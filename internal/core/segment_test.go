package core

// Equivalence suite for segmented planning: plans cut over a segment
// layout — per-segment hashed slices plus global group indices — must
// merge to exactly the static planners' output at every shard count,
// seal threshold, and sampling mode, including seal boundaries that
// straddle blocking groups.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
	"perfxplain/internal/stats"
)

// storeOver replays log's records through a segment store sealing every
// sealEvery records and returns the snapshot log plus its shard layout.
func storeOver(t *testing.T, log *joblog.Log, sealEvery int) (*joblog.Log, *SegmentLayout) {
	t.Helper()
	st := joblog.NewStore(log.Schema, sealEvery)
	for _, r := range log.Records {
		st.MustAppend(r)
	}
	snap := st.Snapshot()
	layout, err := NewSegmentLayout(snap.Segments())
	if err != nil {
		t.Fatal(err)
	}
	if layout.Total() != log.Len() {
		t.Fatalf("layout covers %d records, log has %d", layout.Total(), log.Len())
	}
	return snap.Log(), layout
}

var segSealEveries = []int{5, 17, 40, 200} // several segments + tail ... single tail view

func TestPlanEnumShardsOverMatchesStatic(t *testing.T) {
	log := groupedLog(90, rand.New(rand.NewSource(21)))
	q := blockedQuery()
	for _, maxPairs := range []int{0, 500} {
		pairSeed := stats.DeriveSeed(5, "seg-test")
		staticSpecs := PlanEnumShards(log, features.Level3, q, q.Despite, maxPairs, 1, pairSeed)
		wantRefs, wantLabels := runPlan(t, staticSpecs)
		for _, sealEvery := range segSealEveries {
			snapLog, layout := storeOver(t, log, sealEvery)
			for _, nShards := range []int{1, 2, 7} {
				name := fmt.Sprintf("maxPairs=%d seal=%d shards=%d", maxPairs, sealEvery, nShards)
				specs := PlanEnumShardsOver(layout, snapLog, features.Level3, q, q.Despite, maxPairs, nShards, pairSeed)
				if len(specs) != nShards {
					t.Fatalf("%s: planned %d specs", name, len(specs))
				}
				for si := range specs {
					if len(specs[si].Slices) != len(layout.Slices) {
						t.Fatalf("%s: spec %d carries %d slices, want %d", name, si, len(specs[si].Slices), len(layout.Slices))
					}
					if specs[si].Log.Records != nil || len(specs[si].Global) != 0 {
						t.Fatalf("%s: spec %d still ships a per-shard record cut", name, si)
					}
				}
				refs, labels := runPlan(t, specs)
				if !reflect.DeepEqual(refs, wantRefs) || !reflect.DeepEqual(labels, wantLabels) {
					t.Errorf("%s: segmented plan output differs from static (%d pairs vs %d)",
						name, len(refs), len(wantRefs))
				}
			}
		}
	}
}

func TestPlanEnumShardsStratifiedOverMatchesStatic(t *testing.T) {
	log := groupedLog(90, rand.New(rand.NewSource(22)))
	q := blockedQuery()
	pairSeed := stats.DeriveSeed(6, "seg-strat")
	staticSpecs := PlanEnumShardsStratified(log, features.Level3, q, q.Despite, 300, 1, pairSeed)
	wantRefs, wantLabels := runPlan(t, staticSpecs)
	for _, sealEvery := range segSealEveries {
		snapLog, layout := storeOver(t, log, sealEvery)
		for _, nShards := range []int{1, 2, 7} {
			name := fmt.Sprintf("seal=%d shards=%d", sealEvery, nShards)
			specs := PlanEnumShardsStratifiedOver(layout, snapLog, features.Level3, q, q.Despite, 300, nShards, pairSeed)
			refs, labels := runPlan(t, specs)
			if !reflect.DeepEqual(refs, wantRefs) || !reflect.DeepEqual(labels, wantLabels) {
				t.Errorf("%s: stratified segmented plan differs from static (%d pairs vs %d)",
					name, len(refs), len(wantRefs))
			}
		}
	}
}

func TestPlanEvalShardsOverMatchesStatic(t *testing.T) {
	log := groupedLog(90, rand.New(rand.NewSource(23)))
	q := blockedQuery()
	x := &Explanation{Because: pxql.Predicate{{Feature: "x_compare", Op: pxql.OpEq, Value: joblog.Str("GT")}}}
	serial, err := EvaluateExplanationP(log, features.Level3, q, x, 500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sealEvery := range segSealEveries {
		snapLog, layout := storeOver(t, log, sealEvery)
		for _, nShards := range []int{1, 2, 7} {
			name := fmt.Sprintf("seal=%d shards=%d", sealEvery, nShards)
			specs := PlanEvalShardsOver(layout, snapLog, features.Level3, q, x, 500, nShards, stats.DeriveSeed(3, "evaluate"))
			var context, exp, bec, obs int
			for si := range specs {
				res, err := specs[si].Run()
				if err != nil {
					t.Fatalf("%s: spec %d: %v", name, si, err)
				}
				context += res.Context
				exp += res.Exp
				bec += res.Bec
				obs += res.ObsGivenBec
			}
			merged, err := metricsFromCounts(context, exp, bec, obs)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if merged != serial {
				t.Errorf("%s: merged metrics %+v differ from serial %+v", name, merged, serial)
			}

			// The public entry point with a layout must agree too.
			got, err := EvaluateExplanationShardedOver(layout, snapLog, features.Level3, q, x, 500, 3, nShards, serialEvalRunner{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got != serial {
				t.Errorf("%s: ShardedOver metrics %+v differ from serial %+v", name, got, serial)
			}
		}
	}
}

// TestExplainerWithLayoutByteIdentical pins the end-to-end contract:
// an explainer configured with a segment layout produces exactly the
// explanation of the static path, at several shard counts and seal
// thresholds.
func TestExplainerWithLayoutByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	log := twoFactorLog(90, rng)

	explain := func(l *joblog.Log, cfg Config) string {
		t.Helper()
		ex, err := NewExplainer(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := gtQuery(l, ex.Deriver())
		if q == nil {
			t.Fatal("no pair of interest")
		}
		x, err := ex.ExplainWithDespite(q)
		if err != nil {
			t.Fatal(err)
		}
		return x.String()
	}

	for _, mode := range []string{"", "stratified"} {
		base := explain(log, Config{Width: 3, DespiteWidth: 2, Seed: 13, MaxPairs: 2000, SampleMode: mode})
		for _, sealEvery := range []int{17, 40} {
			snapLog, layout := storeOver(t, log, sealEvery)
			for _, nShards := range []int{1, 2, 7} {
				got := explain(snapLog, Config{Width: 3, DespiteWidth: 2, Seed: 13, MaxPairs: 2000,
					SampleMode: mode, Shards: nShards, Runner: serialEvalRunner{}, Layout: layout})
				if got != base {
					t.Errorf("mode=%q seal=%d shards=%d: segmented explanation differs:\n%s\nvs static:\n%s",
						mode, sealEvery, nShards, got, base)
				}
			}
		}
	}
}

func TestNewSegmentLayoutValidates(t *testing.T) {
	schema := joblog.NewSchema([]joblog.Field{{Name: "x", Kind: joblog.Numeric}})
	rec := func(id string) *joblog.Record {
		return &joblog.Record{ID: id, Values: []joblog.Value{joblog.Num(1)}}
	}
	st := joblog.NewStore(schema, 2)
	for i := 0; i < 5; i++ {
		st.MustAppend(rec(fmt.Sprintf("r%d", i)))
	}
	views := st.Snapshot().Segments()

	if _, err := NewSegmentLayout(views); err != nil {
		t.Fatalf("valid views rejected: %v", err)
	}
	if empty, err := NewSegmentLayout(nil); err != nil || empty.Total() != 0 {
		t.Errorf("empty view list: layout %v, err %v; want empty layout", empty, err)
	}
	if _, err := NewSegmentLayout(views[1:]); err == nil {
		t.Error("views not starting at 0 accepted")
	}
	gap := []joblog.SegmentView{views[0], views[2]}
	if _, err := NewSegmentLayout(gap); err == nil {
		t.Error("non-contiguous views accepted")
	}

	// NewExplainer rejects a layout that does not cover the log.
	log := joblog.NewLog(schema)
	log.MustAppend(rec("a"))
	layout, err := NewSegmentLayout(views)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExplainer(log, Config{Layout: layout}); err == nil {
		t.Error("explainer accepted a layout covering a different record count")
	}
}
