package core

// BenchmarkSeekEnumeration measures seek-driven within-group enumeration
// against the tiled walk it short-circuits, on a needle-in-wide-group
// log: 4 blocking groups of 5,000 jobs each (~100M ordered pairs) where
// the despite conjunct `mem > 3.5` passes ~1% of each group's rows —
// zone maps cannot drop a single group (every zone spans the needle),
// so PR 7's pruner is useless here and the win comes entirely from the
// sorted-index range seek collapsing each group to its qualifying rows
// before any pair is tiled.
//
//   - enum/noseek: pruning on, seek off — every surviving group's full
//     pair space is tiled through EvalBlock.
//   - enum/seek:   the production path — each group filtered to the
//     rows inside the conjunct's lowered ValueRange.
//
// Both paths are byte-identical by construction (keepP is computed over
// the unfiltered pair count; see blockedGroupsOpt), which the JSON
// emitter asserts at full scale before timing anything.
//
// Run with:
//
//	go test -bench BenchmarkSeekEnumeration -benchmem ./internal/core
//
// The same measurements feed the BENCH_seek.json perf artifact:
//
//	BENCH_SEEK_JSON=$PWD/BENCH_seek.json go test -run TestBenchSeekJSON ./internal/core
//
// which CI runs and uploads on every push, failing the build when the
// seek path loses its ≥3x margin.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
)

const (
	seekJobs   = 20000
	seekGroups = 4
	seekSeed   = 53
)

type seekFixture struct {
	log *joblog.Log
	d   *features.Deriver
	q   *pxql.Query
}

var (
	seekOnce sync.Once
	seekFx   *seekFixture
)

// seekFix builds the benchmark log: seekJobs jobs round-robined over
// seekGroups scripts, mem = 8 on every 101st job (101 is coprime with
// the group stride, so every group gets needles and stays zone-alive)
// and {1, 2, 3} otherwise, duration an independent uniform draw per job.
func seekFix() *seekFixture {
	seekOnce.Do(func() {
		rng := rand.New(rand.NewSource(19))
		schema := joblog.NewSchema([]joblog.Field{
			{Name: "script", Kind: joblog.Nominal},
			{Name: "mem", Kind: joblog.Numeric},
			{Name: "duration", Kind: joblog.Numeric},
		})
		log := joblog.NewLog(schema)
		for i := 0; i < seekJobs; i++ {
			mem := float64(1 + i%3)
			if i%101 == 7 {
				mem = 8
			}
			log.MustAppend(&joblog.Record{ID: fmt.Sprintf("s%05d", i), Values: []joblog.Value{
				joblog.Str(fmt.Sprintf("script-%02d", i%seekGroups)),
				joblog.Num(mem),
				joblog.Num(10 + rng.Float64()*1000),
			}})
		}
		seekFx = &seekFixture{log: log, d: features.NewDeriver(schema, features.Level3), q: needleQuery()}
	})
	return seekFx
}

func benchEnumNoSeek(b *testing.B) {
	fx := seekFix()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		seekSink = len(enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, seekSeed, 1,
			enumOpts{noSeek: true}).refs)
	}
}

func benchEnumSeek(b *testing.B) {
	fx := seekFix()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		seekSink = len(enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, seekSeed, 1,
			enumOpts{}).refs)
	}
}

var seekSink int

var seekBenches = []struct {
	name string
	fn   func(*testing.B)
}{
	{"enum/noseek", benchEnumNoSeek},
	{"enum/seek", benchEnumSeek},
}

func BenchmarkSeekEnumeration(b *testing.B) {
	for _, bench := range seekBenches {
		b.Run(bench.name, bench.fn)
	}
}

// TestBenchSeekJSON runs the seek benchmarks programmatically and writes
// the BENCH_seek.json summary consumed by CI. Skipped unless
// BENCH_SEEK_JSON names the output path.
func TestBenchSeekJSON(t *testing.T) {
	path := os.Getenv("BENCH_SEEK_JSON")
	if path == "" {
		t.Skip("set BENCH_SEEK_JSON=<path> to emit the benchmark summary")
	}
	fx := seekFix()

	// The benchmark is only meaningful if the two paths do identical
	// work: assert byte-identity at full scale before timing.
	full := enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, seekSeed, 1, enumOpts{noSeek: true})
	seeked := enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, seekSeed, 1, enumOpts{})
	if !reflect.DeepEqual(full.refs, seeked.refs) || !reflect.DeepEqual(full.labels, seeked.labels) {
		t.Fatalf("seeked enumeration differs from the tiled walk (%d vs %d pairs)",
			len(seeked.refs), len(full.refs))
	}
	if len(seeked.refs) == 0 {
		t.Fatal("fixture produced no related pairs; the benchmark measures nothing")
	}

	type entry struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	// Best of three runs per benchmark: shared CI runners are noisy, and
	// the minimum ns/op is the measurement least polluted by neighbours —
	// the 3x gate below compares engine speed, not runner contention.
	results := make(map[string]entry, len(seekBenches))
	for _, bench := range seekBenches {
		var best entry
		for run := 0; run < 3; run++ {
			r := testing.Benchmark(bench.fn)
			e := entry{
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if run == 0 || e.NsPerOp < best.NsPerOp {
				best = e
			}
		}
		results[bench.name] = best
	}
	speedup := 0.0
	if bm := results["enum/seek"].NsPerOp; bm > 0 {
		speedup = results["enum/noseek"].NsPerOp / bm
	}
	seekGs, _ := blockedGroupsOpt(fx.log, fx.q.Despite, 0, true, true)
	allGs, _ := blockedGroupsOpt(fx.log, fx.q.Despite, 0, true, false)
	rows := func(gs [][]int) int {
		n := 0
		for _, g := range gs {
			n += len(g)
		}
		return n
	}
	out := map[string]any{
		"jobs":          fx.log.Len(),
		"groups":        len(allGs),
		"group_rows":    rows(allGs),
		"seeked_rows":   rows(seekGs),
		"related_pairs": len(seeked.refs),
		"benchmarks":    results,
		"speedup":       map[string]float64{"enum": speedup},
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, blob)

	// Gate: the range seek must clear the 3x bar over the tiled walk on
	// the needle log (measured margins are far higher; 3x absorbs runner
	// noise).
	if speedup < 3 {
		t.Errorf("enum speedup = %.2fx, want >= 3x", speedup)
	}
}
