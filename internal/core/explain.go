package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"perfxplain/internal/bitset"
	"perfxplain/internal/dtree"
	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/par"
	"perfxplain/internal/pxql"
	"perfxplain/internal/stats"
)

// Config tunes the explainer. The zero value is not usable; use
// DefaultConfig as a base.
type Config struct {
	// Width is the number of atomic predicates in a generated because
	// clause. Default 3 (the paper's usual setting).
	Width int
	// DespiteWidth is the width of generated despite extensions. Default 3
	// (Section 6.4 restricts generated clauses to width 3).
	DespiteWidth int
	// SampleSize is the target size of the balanced training sample.
	// Default 2000 (Section 4.3).
	SampleSize int
	// PrecisionWeight blends precision vs generality scores; the paper
	// uses 0.8.
	PrecisionWeight float64
	// Level selects the feature hierarchy level (Section 6.8). Default
	// Level3 (the full Table 1 set).
	Level features.Level
	// Target is the raw feature whose derived features are the query
	// subject and therefore excluded from generated clauses. Default
	// "duration".
	Target string
	// MaxPairs caps enumerated related pairs; larger pair spaces are
	// Bernoulli-subsampled. Default 200000.
	MaxPairs int
	// SampleMode selects how an over-budget pair space is thinned.
	// "bernoulli" (or empty, the default) keeps each candidate pair
	// independently with probability budget/total — the seed-stable
	// behaviour every golden output pins. "stratified" draws a fixed
	// per-blocking-group quota instead (proportional allocation with a
	// small-group floor, see stratifyBudgets), so rare strata survive
	// skew that would starve them under Bernoulli thinning, and the
	// explanation carries Wilson confidence bounds on its training
	// diagnostics. Both modes are deterministic in the seed and
	// byte-identical at every parallelism and shard count.
	SampleMode string
	// SampleBudget is the stratified mode's total pair budget; <= 0
	// defaults to MaxPairs. Ignored in Bernoulli mode.
	SampleBudget int
	// SamplePilot enables Wilson-adaptive two-pass stratified sampling:
	// the fraction (0 < SamplePilot < 1) of SampleBudget spent on a pilot
	// round allocated per the proportional rule, after which the
	// remainder is allocated proportional to each stratum's (Wilson
	// interval width × pair space) — budget flows to the strata whose
	// estimates are still uncertain instead of merely large (see
	// adaptiveBudgets). 0, the default, keeps the one-shot proportional
	// allocation. Requires SampleMode "stratified". The sampled set
	// remains deterministic in the seed and byte-identical at every
	// parallelism and shard count.
	SamplePilot float64
	// TopK caps how many candidate predicates each growth round scores
	// fully: candidates are ranked by information gain and only the top K
	// enter the percentile-rank blend. 0 keeps every candidate. Defaults
	// to 32 in stratified mode and 0 (off) otherwise — the percentile
	// normalisation makes pruning visible in exact outputs, so it is
	// opt-in there.
	TopK int
	// Seed drives sampling.
	Seed int64
	// RawScores disables the percentile-rank normalisation of precision
	// and generality (ablation; Section 4.2 explains why normalisation is
	// needed).
	RawScores bool
	// UnbalancedSample replaces the class-balanced sampler with a uniform
	// one (ablation for Section 4.3).
	UnbalancedSample bool
	// DiverseSample additionally caps how often a single execution may
	// appear in the training sample, implementing the paper's Section 4.3
	// future-work idea of biasing toward a varied set of executions.
	DiverseSample bool
	// Parallelism bounds the worker goroutines used for pair enumeration,
	// materialization and predicate scoring. Values <= 0 mean
	// runtime.GOMAXPROCS(0). Output is byte-identical at every setting.
	Parallelism int
	// Shards is the number of self-contained shard specs the planner cuts
	// the pair pipeline into when Runner is set; <= 0 means one per
	// Parallelism worker. Output is byte-identical at every shard count.
	Shards int
	// Runner executes planned shard specs — in-process or on worker
	// subprocesses (see internal/shard). nil selects the direct
	// single-process path.
	Runner ShardRunner
	// Layout describes the log's segment decomposition when it is a
	// segment-store snapshot (joblog.Store): runner-backed planners then
	// ship per-segment content-addressed slices instead of cutting and
	// hashing ad-hoc record subsets, so sealed segments stay warm in
	// worker caches across appends. It must cover exactly the log's
	// records. nil — or a nil Runner — plans against the log directly;
	// results are byte-identical either way.
	Layout *SegmentLayout
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Width:           3,
		DespiteWidth:    3,
		SampleSize:      2000,
		PrecisionWeight: 0.8,
		Level:           features.Level3,
		Target:          "duration",
		MaxPairs:        200000,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Width <= 0 {
		c.Width = d.Width
	}
	if c.DespiteWidth <= 0 {
		c.DespiteWidth = d.DespiteWidth
	}
	if c.SampleSize <= 0 {
		c.SampleSize = d.SampleSize
	}
	if c.PrecisionWeight == 0 {
		c.PrecisionWeight = d.PrecisionWeight
	}
	if c.Level == 0 {
		c.Level = d.Level
	}
	if c.Target == "" {
		c.Target = d.Target
	}
	if c.MaxPairs == 0 {
		c.MaxPairs = d.MaxPairs
	}
	if c.SampleMode == SampleStratified {
		if c.SampleBudget <= 0 {
			c.SampleBudget = c.MaxPairs
		}
		if c.TopK == 0 {
			c.TopK = 32
		}
	}
	if c.TopK < 0 {
		c.TopK = 0
	}
	if c.Runner != nil && c.Shards <= 0 {
		c.Shards = par.Resolve(c.Parallelism)
	}
	return c
}

// SampleMode values.
const (
	// SampleBernoulli is the default independent-keep thinning.
	SampleBernoulli = "bernoulli"
	// SampleStratified is per-blocking-group budgeted sampling with
	// Wilson confidence bounds on the training diagnostics.
	SampleStratified = "stratified"
)

// Explainer answers PXQL queries against one execution log.
type Explainer struct {
	log *joblog.Log
	d   *features.Deriver
	cfg Config
}

// NewExplainer builds an explainer over the log.
func NewExplainer(log *joblog.Log, cfg Config) (*Explainer, error) {
	if cfg.SampleMode != "" && cfg.SampleMode != SampleBernoulli && cfg.SampleMode != SampleStratified {
		return nil, fmt.Errorf("core: unknown sample mode %q (want %q or %q)",
			cfg.SampleMode, SampleBernoulli, SampleStratified)
	}
	if cfg.SamplePilot < 0 || cfg.SamplePilot >= 1 {
		return nil, fmt.Errorf("core: sample pilot fraction %v outside [0, 1)", cfg.SamplePilot)
	}
	if cfg.SamplePilot > 0 && cfg.SampleMode != SampleStratified {
		return nil, fmt.Errorf("core: sample pilot fraction requires sample mode %q", SampleStratified)
	}
	cfg = cfg.withDefaults()
	if log == nil || log.Len() == 0 {
		return nil, fmt.Errorf("core: empty log")
	}
	if _, ok := log.Schema.Index(cfg.Target); !ok {
		return nil, fmt.Errorf("core: log has no target feature %q", cfg.Target)
	}
	if cfg.Layout != nil && cfg.Layout.Total() != log.Len() {
		return nil, fmt.Errorf("core: segment layout covers %d records, log has %d",
			cfg.Layout.Total(), log.Len())
	}
	// The deriver always exposes the full Table 1 feature set: queries may
	// mention any derived feature regardless of the configured level. The
	// level only restricts which features generated clauses may use
	// (Section 6.8), enforced in candidates().
	return &Explainer{log: log, d: features.NewDeriver(log.Schema, features.Level3), cfg: cfg}, nil
}

// Deriver exposes the derived pair schema (for query validation and
// metric evaluation).
func (e *Explainer) Deriver() *features.Deriver { return e.d }

// Log returns the underlying execution log.
func (e *Explainer) Log() *joblog.Log { return e.log }

// Explanation is the answer to a PXQL query.
type Explanation struct {
	// Despite is the generated despite extension des' (empty when despite
	// generation was not requested). The user's own despite clause is in
	// the query, not here.
	Despite pxql.Predicate
	// Because is the generated because clause.
	Because pxql.Predicate

	// Training diagnostics, measured on the (sampled) training pairs.
	TrainPrecision  float64 // P(obs | bec ∧ des' ∧ des) on the sample
	TrainGenerality float64 // P(bec | des' ∧ des) on the sample
	TrainRelevance  float64 // P(exp | des' ∧ des) on the related pairs
	SampleSize      int
	RelatedPairs    int

	// TrainRelevanceLo/Hi bound TrainRelevance with a 95% Wilson score
	// interval when the pair space was sampled approximately (stratified
	// mode); both stay zero in exact/Bernoulli mode.
	TrainRelevanceLo float64
	TrainRelevanceHi float64

	// Atoms records per-predicate marginal quality: entry i holds the
	// cumulative precision and generality of the because clause's first
	// i+1 atoms on the training sample. Greedy construction puts the most
	// important predicate first (Section 3.3's ordering requirement); this
	// makes the claim inspectable.
	Atoms []AtomStats
}

// AtomStats is the cumulative quality of a because-clause prefix.
type AtomStats struct {
	Atom       pxql.Atom
	Precision  float64 // P(obs | first i+1 atoms) on the sample
	Generality float64 // P(first i+1 atoms) on the sample

	// 95% Wilson score intervals around Precision and Generality,
	// populated only in stratified sampling mode (zero otherwise).
	PrecisionLo  float64
	PrecisionHi  float64
	GeneralityLo float64
	GeneralityHi float64
}

// wilsonZ is the critical value of the 95% confidence intervals attached
// to stratified-mode diagnostics.
const wilsonZ = 1.96

// String renders the explanation in the paper's DESPITE/BECAUSE form.
func (x *Explanation) String() string {
	return fmt.Sprintf("DESPITE %s\nBECAUSE %s", x.Despite, x.Because)
}

// bind resolves the query's pair of interest and checks Definition 1:
// des and obs must hold on the pair, exp must not.
func (e *Explainer) bind(q *pxql.Query) (a, b *joblog.Record, err error) {
	if q.ID1 == "" || q.ID2 == "" {
		return nil, nil, fmt.Errorf("core: query does not name a pair of interest")
	}
	a = e.log.Find(q.ID1)
	if a == nil {
		return nil, nil, fmt.Errorf("core: no record %q in log", q.ID1)
	}
	b = e.log.Find(q.ID2)
	if b == nil {
		return nil, nil, fmt.Errorf("core: no record %q in log", q.ID2)
	}
	if err := q.Validate(e.d.Schema()); err != nil {
		return nil, nil, err
	}
	if !q.Despite.EvalPair(e.d, a, b) {
		return nil, nil, fmt.Errorf("core: despite clause does not hold for (%s, %s)", q.ID1, q.ID2)
	}
	if !q.Observed.EvalPair(e.d, a, b) {
		return nil, nil, fmt.Errorf("core: observed clause does not hold for (%s, %s)", q.ID1, q.ID2)
	}
	if q.Expected.EvalPair(e.d, a, b) {
		return nil, nil, fmt.Errorf("core: expected clause holds for (%s, %s); nothing to explain", q.ID1, q.ID2)
	}
	return a, b, nil
}

// Explain generates the because clause for the query, using the user's
// despite clause as-is (the paper's default mode).
func (e *Explainer) Explain(q *pxql.Query) (*Explanation, error) {
	return e.explain(context.Background(), q, false)
}

// ExplainCtx is Explain with a cancellation context: the pipeline
// checks ctx between its stages and at every growth round, returning
// ctx.Err() once it is done. Cancellation never perturbs a completed
// result — an explanation returned without error is byte-identical to
// an uncancelled run. The context carries cancellation only; it is
// never consulted for values or deadlines directly, so the
// deterministic-output contract is untouched.
func (e *Explainer) ExplainCtx(ctx context.Context, q *pxql.Query) (*Explanation, error) {
	return e.explain(ctx, q, false)
}

// ExplainWithDespite first generates a despite extension des' (Section
// 6.4), then generates the because clause in the context des ∧ des'.
func (e *Explainer) ExplainWithDespite(q *pxql.Query) (*Explanation, error) {
	return e.explain(context.Background(), q, true)
}

// ExplainWithDespiteCtx is ExplainWithDespite with a cancellation
// context (see ExplainCtx for the checkpoint contract).
func (e *Explainer) ExplainWithDespiteCtx(ctx context.Context, q *pxql.Query) (*Explanation, error) {
	return e.explain(ctx, q, true)
}

func (e *Explainer) explain(ctx context.Context, q *pxql.Query, genDespite bool) (*Explanation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a, b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	x := &Explanation{}
	despite := q.Despite
	if genDespite {
		des, err := e.generateDespite(ctx, q, a, b)
		if err != nil {
			return nil, err
		}
		x.Despite = des
		despite = q.Despite.And(des)
	}

	related, err := e.enumeratePairs(ctx, q, despite, stats.DeriveSeed(e.cfg.Seed, "because-pairs"))
	if err != nil {
		return nil, err
	}
	x.RelatedPairs = len(related.refs)
	if len(related.refs) == 0 {
		return nil, fmt.Errorf("core: no related pairs in the log for this query")
	}
	nObs, _ := related.counts()
	x.TrainRelevance = 1 - float64(nObs)/float64(len(related.refs))
	strat := e.cfg.SampleMode == SampleStratified
	if strat {
		x.TrainRelevanceLo, x.TrainRelevanceHi = stats.Wilson(len(related.refs)-nObs, len(related.refs), wilsonZ)
	}

	// Sampling stays serial: it is O(pairs) cheap, and drawing from one
	// sequential stream over the deterministically ordered pair set keeps
	// it reproducible.
	sample := e.sample(related, stats.DeriveRand(e.cfg.Seed, "because-sample"))
	x.SampleSize = len(sample.refs)
	plan := e.planSample(sample)
	m, err := e.materializePairs(ctx, sample, plan)
	if err != nil {
		return nil, err
	}
	pairVec := e.d.Vector(a, b)

	bc := newBitmapCache(m, e.cfg.Parallelism)
	bec, err := e.grow(ctx, bc, plan, sample.labels, pairVec, e.cfg.Width)
	if err != nil {
		return nil, err
	}
	x.Because = bec

	// Training diagnostics over the sample, per clause prefix: each atom
	// fills its own bitmap (the growth cache may hold only
	// working-set-live words; the prefix compose starts from every
	// sampled pair, so it cannot reuse those), ANDs into the running
	// prefix selection, and the counts are popcounts against the label
	// bitmap. The fill passes the running prefix as the live mask: a
	// word with no surviving prefix pair may keep stale bits in sel, but
	// AndWith leaves dead prefix words dead whatever sel holds there, so
	// the restriction skips plane work without changing a single count.
	in := e.log.Columns().Intern()
	posBits := bitset.FromBools(sample.labels)
	prefix := bitset.Make(m.N)
	prefix.Ones(m.N)
	sel := bitset.Make(m.N)
	for w := 1; w <= len(bec); w++ {
		a := bec[w-1]
		idx, _ := e.d.Schema().Index(a.Feature)
		ma := newMatrixAtom(e.d, in, idx, a)
		ma.fillRange(m, 0, m.N, sel, prefix)
		prefix.AndWith(sel)
		sat := prefix.Count()
		satObs := bitset.AndCount(prefix, posBits)
		st := AtomStats{Atom: a}
		if sat > 0 {
			st.Precision = float64(satObs) / float64(sat)
		}
		if m.N > 0 {
			st.Generality = float64(sat) / float64(m.N)
		}
		if strat {
			st.PrecisionLo, st.PrecisionHi = stats.Wilson(satObs, sat, wilsonZ)
			st.GeneralityLo, st.GeneralityHi = stats.Wilson(sat, m.N, wilsonZ)
		}
		x.Atoms = append(x.Atoms, st)
	}
	if n := len(x.Atoms); n > 0 {
		x.TrainPrecision = x.Atoms[n-1].Precision
		x.TrainGenerality = x.Atoms[n-1].Generality
	} else if m.N > 0 {
		// Empty clause: precision is the sample's observed fraction.
		obs := 0
		for _, l := range sample.labels {
			if l {
				obs++
			}
		}
		x.TrainPrecision = float64(obs) / float64(m.N)
		x.TrainGenerality = 1
	}
	return x, nil
}

// GenerateDespite produces only the despite extension for a query
// (PerfXplain's response to an under-specified query, Section 6.4).
func (e *Explainer) GenerateDespite(q *pxql.Query) (pxql.Predicate, error) {
	return e.GenerateDespiteCtx(context.Background(), q)
}

// GenerateDespiteCtx is GenerateDespite with a cancellation context
// (see ExplainCtx for the checkpoint contract).
func (e *Explainer) GenerateDespiteCtx(ctx context.Context, q *pxql.Query) (pxql.Predicate, error) {
	a, b, err := e.bind(q)
	if err != nil {
		return nil, err
	}
	return e.generateDespite(ctx, q, a, b)
}

func (e *Explainer) generateDespite(ctx context.Context, q *pxql.Query, a, b *joblog.Record) (pxql.Predicate, error) {
	related, err := e.enumeratePairs(ctx, q, q.Despite, stats.DeriveSeed(e.cfg.Seed, "despite-pairs"))
	if err != nil {
		return nil, err
	}
	if len(related.refs) == 0 {
		return nil, fmt.Errorf("core: no related pairs in the log for this query")
	}
	sample := e.sample(related, stats.DeriveRand(e.cfg.Seed, "despite-sample"))
	plan := e.planSample(sample)
	m, err := e.materializePairs(ctx, sample, plan)
	if err != nil {
		return nil, err
	}
	pairVec := e.d.Vector(a, b)

	// Positive class for despite generation is "performed as expected":
	// the clause should maximise relevance P(exp | des' ∧ des).
	flipped := make([]bool, len(sample.labels))
	for i, l := range sample.labels {
		flipped[i] = !l
	}
	return e.grow(ctx, newBitmapCache(m, e.cfg.Parallelism), plan, flipped, pairVec, e.cfg.DespiteWidth)
}

func (e *Explainer) sample(ps *pairSet, rng *rand.Rand) *pairSet {
	switch {
	case e.cfg.UnbalancedSample:
		return uniformSample(ps, e.cfg.SampleSize, rng)
	case e.cfg.DiverseSample:
		return diverseSample(ps, e.cfg.SampleSize, e.log, rng)
	default:
		return balancedSample(ps, e.cfg.SampleSize, rng)
	}
}

// grow is Algorithm 1's greedy loop, shared by because generation
// (positive labels = performed-as-observed) and despite generation
// (labels flipped so positive = performed-as-expected, turning the
// precision measure into relevance — the only change the paper makes to
// the algorithm for des' generation).
//
// Candidate scoring runs on selection bitmaps: each round's candidate
// atoms are evaluated once over the whole matrix into cached bitmaps
// (tile-parallel, see bitmapCache), then every candidate's precision and
// generality are two fused AND-popcounts against the working-set and
// label bitmaps, and the winner restricts the working set with one
// word-AND. The counts — and therefore the clause — are identical to
// the per-pair loops this replaces.
func (e *Explainer) grow(ctx context.Context, bc *bitmapCache, plan *plannedSample, labels []bool,
	pairVec []joblog.Value, width int) (pxql.Predicate, error) {

	m := bc.m
	var clause pxql.Predicate
	cur := make([]int, m.N)
	for i := range cur {
		cur[i] = i
	}
	posBits := bitset.FromBools(labels)
	curBits := bitset.Make(m.N)
	curBits.Ones(m.N)

	for round := 0; round < width; round++ {
		// The round loop is the cancellation checkpoint of the growth
		// phase: each round is one bounded unit of scoring work, so a
		// cancelled query stops within a round's latency of the signal.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			break
		}
		// Stop when the remaining pairs are pure: no signal left.
		pos := bitset.AndCount(curBits, posBits)
		if pos == 0 || pos == len(cur) {
			break
		}

		cands, err := e.candidatesFor(m, plan, labels, cur, pairVec, clause)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			break
		}

		// Top-K candidate pruning (opt-in, default-on in stratified
		// mode): keep only the K highest-gain candidates before the
		// bitmap fills, so dominated features never pay for a bitmap.
		// The survivors are restored to ascending feature order — the
		// order every downstream tie-break assumes.
		if k := e.cfg.TopK; k > 0 && len(cands) > k {
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].gain != cands[b].gain {
					return cands[a].gain > cands[b].gain
				}
				return cands[a].featIdx < cands[b].featIdx
			})
			cands = cands[:k]
			sort.Slice(cands, func(a, b int) bool { return cands[a].featIdx < cands[b].featIdx })
		}

		// Cross-feature selection: percentile-normalised blend of
		// precision (P(positive | p)) and generality (P(p)). Each
		// candidate's counts compose from its bitmap by word-AND +
		// popcount; the heavy part — filling the distinct atoms' bitmaps —
		// ran tile-parallel in getAll, restricted to the working set's
		// live words. ubs[ci] bounds the candidate's possible satisfied
		// count from above (the bitmap's popcount at fill time; the
		// working set only shrinks), so a zero bound skips both fused
		// popcounts and a zero sat skips the three-way one — provably
		// the same counts either way.
		sels, ubs := bc.getAll(cands, curBits)
		precs := make([]float64, len(cands))
		gens := make([]float64, len(cands))
		for ci := range cands {
			sat := 0
			if ubs[ci] > 0 {
				sat = bitset.AndCount(sels[ci], curBits)
			}
			if sat > 0 {
				satPos := bitset.AndCount3(sels[ci], curBits, posBits)
				precs[ci] = float64(satPos) / float64(sat)
			}
			gens[ci] = float64(sat) / float64(len(cur))
		}
		precScores, genScores := precs, gens
		if !e.cfg.RawScores {
			precScores = stats.PercentileRanks(precs)
			genScores = stats.PercentileRanks(gens)
		}
		w := e.cfg.PrecisionWeight
		best, bestScore := -1, -1.0
		for ci := range cands {
			score := w*precScores[ci] + (1-w)*genScores[ci]
			if score > bestScore {
				best, bestScore = ci, score
			}
		}
		chosen := cands[best]
		clause = append(clause, chosen.atom)

		// Restrict the working set to pairs satisfying the clause so far.
		curBits.AndWith(sels[best])
		cur = cur[:0]
		curBits.ForEach(func(i int) { cur = append(cur, i) })
	}
	return clause, nil
}

// candidatesFor dispatches one candidate-scoring round to the shard
// runner when one is configured, and to the in-process per-feature loop
// otherwise. Both paths yield the same candidates in the same order.
func (e *Explainer) candidatesFor(m *features.PairMatrix, plan *plannedSample, labels []bool,
	cur []int, pairVec []joblog.Value, clause pxql.Predicate) ([]candidate, error) {

	if e.cfg.Runner != nil {
		return e.candidatesSharded(plan, labels, cur, pairVec, clause)
	}
	return e.candidates(m, labels, cur, pairVec, clause), nil
}

type candidate struct {
	featIdx int
	atom    pxql.Atom
	ma      matrixAtom
	gain    float64
}

// candidates builds the best applicable predicate per feature by
// information gain (Algorithm 1 line 5) — the algorithm's inner loop,
// scored concurrently across features straight off the pair-matrix
// planes: numeric features gather a flat float column, nominal features
// count interned symbols and only decode the few distinct values for the
// deterministic string-ordered tie-break. Results land in a per-feature
// slot and are compacted in schema order afterwards, so the candidate
// list is independent of scheduling. Features derived from the query
// target are excluded, as are features whose pair-of-interest value is
// missing (no applicable predicate exists) and atoms already in the
// clause.
func (e *Explainer) candidates(m *features.PairMatrix, labels []bool,
	cur []int, pairVec []joblog.Value, clause pxql.Predicate) []candidate {

	schema := e.d.Schema()
	in := e.log.Columns().Intern()
	subLabels := make([]bool, len(cur))
	for k, i := range cur {
		subLabels[k] = labels[i]
	}

	found := make([]*candidate, schema.Len())
	par.Do(schema.Len(), e.cfg.Parallelism, func(f int) {
		atom, gain, ok := scoreFeature(e.d, in, m, cur, subLabels, pairVec, clause, e.cfg.Target, e.cfg.Level, f)
		if !ok {
			return
		}
		found[f] = &candidate{featIdx: f, atom: atom, ma: newMatrixAtom(e.d, in, f, atom), gain: gain}
	})

	var out []candidate
	for _, c := range found {
		if c != nil {
			out = append(out, *c)
		}
	}
	return out
}

// scoreFeature computes the best applicable predicate over one derived
// feature f for one scoring round — the per-feature body of Algorithm 1
// line 5, shared verbatim by the in-process candidates loop and the
// shard-scoring executor (ScoreSpec.Run) so the two can never drift. cur
// addresses the working-set rows of m; subLabels is parallel to cur. ok
// is false when the feature is excluded (target-derived, above the
// clause feature level, inapplicable to the pair of interest, already in
// the clause) or admits no split.
func scoreFeature(d *features.Deriver, in *joblog.Intern, m *features.PairMatrix,
	cur []int, subLabels []bool, pairVec []joblog.Value, clause pxql.Predicate,
	target string, candLevel features.Level, f int) (pxql.Atom, float64, bool) {

	schema := d.Schema()
	rawIdx, kind := d.RawOf(f)
	if d.RawSchema().Field(rawIdx).Name == target {
		return pxql.Atom{}, 0, false
	}
	// Honour the configured feature level (Section 6.8): level 1 may
	// use only isSame features; level 2 adds compare and diff; level 3
	// adds base features.
	if candLevel == features.Level1 && kind != features.IsSame {
		return pxql.Atom{}, 0, false
	}
	if candLevel == features.Level2 && kind == features.Base {
		return pxql.Atom{}, 0, false
	}
	v0 := pairVec[f]
	if v0.IsMissing() {
		return pxql.Atom{}, 0, false // no predicate over f can hold on the pair of interest
	}
	var atom pxql.Atom
	var gain float64
	if numOff := d.NumOffset(f); numOff >= 0 {
		col := make([]float64, len(cur))
		for k, i := range cur {
			col[k] = m.NumAt(i, numOff)
		}
		thr, g, ok := dtree.BestThresholdF(col, subLabels)
		if !ok {
			return pxql.Atom{}, 0, false
		}
		op := pxql.OpLe
		if v0.Num > thr {
			op = pxql.OpGt
		}
		atom = pxql.Atom{Feature: schema.Field(f).Name, Op: op, Value: joblog.Num(thr)}
		gain = g
	} else {
		val, g, ok := bestNominalSyms(d, in, f, m, cur, subLabels)
		if !ok {
			return pxql.Atom{}, 0, false
		}
		// The split on value v* has the same gain whichever side the
		// predicate asserts; applicability picks the direction.
		op := pxql.OpEq
		if v0.Str != val {
			op = pxql.OpNe
		}
		atom = pxql.Atom{Feature: schema.Field(f).Name, Op: op, Value: joblog.Str(val)}
		gain = g
	}
	if containsAtom(clause, atom) {
		return pxql.Atom{}, 0, false
	}
	return atom, gain, true
}

// bestNominalSyms is BestNominalValue over a symbol-plane matrix column:
// class counts accumulate per interned symbol, then the few distinct
// symbols are decoded and merged by rendered string (distinct diff
// symbols may render identically when a value contains the arrow) so the
// scoring and its string-ordered tie-break match the row engine exactly.
func bestNominalSyms(d *features.Deriver, in *joblog.Intern, featIdx int,
	m *features.PairMatrix, cur []int, subLabels []bool) (string, float64, bool) {

	symOff := d.SymOffset(featIdx)
	type cnt struct{ pos, neg int }
	bySym := make(map[uint64]*cnt)
	for k, i := range cur {
		s := m.SymAt(i, symOff)
		if s == features.MissingSym {
			continue
		}
		c := bySym[s]
		if c == nil {
			c = &cnt{}
			bySym[s] = c
		}
		if subLabels[k] {
			c.pos++
		} else {
			c.neg++
		}
	}
	byVal := make(map[string]*cnt, len(bySym))
	//pxql:orderinvariant — integer count merge commutes; byVal is sorted below
	for s, c := range bySym {
		v := d.SymString(in, featIdx, s)
		if mc := byVal[v]; mc != nil {
			mc.pos += c.pos
			mc.neg += c.neg
		} else {
			byVal[v] = &cnt{pos: c.pos, neg: c.neg}
		}
	}
	vals := make([]string, 0, len(byVal))
	for v := range byVal {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	counts := make([]dtree.NominalCount, len(vals))
	for i, v := range vals {
		counts[i] = dtree.NominalCount{Value: v, Pos: byVal[v].pos, Neg: byVal[v].neg}
	}
	return dtree.BestNominalFromCounts(counts, len(cur))
}

func containsAtom(p pxql.Predicate, a pxql.Atom) bool {
	for _, x := range p {
		if x.Feature == a.Feature && x.Op == a.Op && x.Value.Equal(a.Value) {
			return true
		}
	}
	return false
}
