package core

// Seek-driven within-group enumeration. Zone-map pruning (prune.go)
// drops whole blocking groups that provably contain no despite-satisfying
// pair; this file is the row-level counterpart for the groups that
// survive: the same AtomNumRange lowering that proves a group dead
// proves which individual rows can appear in a satisfying pair at all.
// A despite conjunct `<raw> <op> c` over a numeric base feature holds on
// an ordered pair only when BOTH sides are present, non-NaN, equal, and
// carry a value inside the atom's lowered ValueRange — so any row whose
// own cell falls outside the range (or is missing or NaN) cannot be
// either side of a qualifying pair. Instead of tiling the group's full
// n·(n−1) pair matrix and letting EvalBlock reject those pairs one tile
// at a time, the per-column sorted index seeks directly to the
// qualifying value range (ColIndex.RangeBetween) and the group is
// filtered to the intersection before any pair is walked: a wide group
// with a needle-thin qualifying range collapses from O(n²) pair
// evaluations to O(k²) with k the qualifying rows.
//
// Exactness contract (mirrors prune.go): a row may be filtered only
// when no ordered pair containing it satisfies the despite clause, so
// filtering removes pairs that enumeration would have rejected anyway.
// The Bernoulli keep probability is computed over the UNFILTERED pair
// count (see blockedGroups) and each keep decision is a pure function
// of (seed, i, j) global record indices, so thinning is unchanged and
// output stays byte-identical. Conjuncts that do not lower exactly —
// OpNe, nominal columns, alien columns, kind-mismatched constants —
// contribute no filter and those rows are walked as before.
//
// Stratified mode never seeks: groupDraws is keyed on (group's first
// global index, group size), so filtering rows would change the draw
// set and break the PR 7 sampling contract. The planners pass seek
// accordingly (see blockedGroupsOpt call sites).

import (
	"perfxplain/internal/bitset"
	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
)

// rowSeeker filters a blocking group to the rows that can appear in a
// despite-satisfying pair, via the intersection of the per-conjunct
// qualifying ranges seeked from the sorted column indexes.
type rowSeeker struct {
	allow bitset.Set // global row set; rows outside can satisfy no pair
}

// newRowSeeker lowers the despite clause's numeric base conjuncts to
// seekable value ranges and intersects their qualifying row sets. It
// returns nil when no conjunct lowers exactly — enumeration then walks
// every group unfiltered, exactly as before. Like the pruner it reads
// only the memoized columnar view (a pure deterministic function of the
// record list), so the filter is identical across rebuilds, shard
// counts and processes.
func newRowSeeker(log *joblog.Log, despite pxql.Predicate) *rowSeeker {
	cols := log.Columns()
	var allow bitset.Set
	for _, a := range despite {
		raw, fam := features.ParseName(a.Feature)
		// Only `<raw> <op> c` base conjuncts with a one-range lowering
		// qualify: OpNe's complement is not a single range, and nominal
		// equality is already handled by candidateRecords' prefilter.
		if fam != features.Base || a.Op == pxql.OpNe {
			continue
		}
		fi, ok := log.Schema.Index(raw)
		if !ok {
			continue
		}
		col := cols.Col(fi)
		// Alien cells make the planes (and the index over them) diverge
		// from boxed evaluation; kind mismatches never lower. Mirrors
		// newGroupPruner's guards.
		if col.HasAlien || col.Kind != joblog.Numeric ||
			a.Value.IsMissing() || a.Value.Kind != joblog.Numeric {
			continue
		}
		rng, ok := pxql.AtomNumRange(a.Op, a.Value.Num)
		if !ok {
			continue
		}
		// Perm already excludes missing and NaN cells, so the range seek
		// returns exactly the rows that can sit on either side of a
		// satisfying pair. An empty range yields an empty row set and
		// every group filters to nothing — the conjunct is unsatisfiable.
		rows := cols.SortedIndex(fi).RangeBetween(rng.Lo, rng.Hi, rng.LoOpen, rng.HiOpen)
		cur := bitset.Make(log.Len())
		for _, r := range rows {
			cur.SetBit(int(r))
		}
		if allow == nil {
			allow = cur
		} else {
			allow.AndWith(cur)
		}
	}
	if allow == nil {
		return nil
	}
	return &rowSeeker{allow: allow}
}

// filter rewrites g in place to its qualifying rows, preserving order.
func (s *rowSeeker) filter(g []int) []int {
	out := g[:0]
	for _, i := range g {
		if s.allow.Get(i) {
			out = append(out, i)
		}
	}
	return out
}
