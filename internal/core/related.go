package core

import (
	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
	"perfxplain/internal/stats"
)

// LabeledPair is an ordered pair of log records related to a query
// (Definition 7), labelled by which of the query's outcome clauses it
// satisfied.
type LabeledPair struct {
	A, B *joblog.Record
	// IA and IB are A's and B's record indices in the source log, the
	// addresses columnar consumers evaluate pairs by.
	IA, IB int
	// Observed is true when the pair performed as observed (Definition 9),
	// false when it performed as expected (Definition 8).
	Observed bool
}

// RelatedPairs enumerates the log's pairs related to the query under its
// despite clause — the construction both PerfXplain and the SimButDiff
// baseline train from. maxPairs caps the pair space (0 = unlimited);
// enumeration is deterministic in seed and runs on all available cores
// (the result does not depend on the worker count).
func RelatedPairs(log *joblog.Log, level features.Level, q *pxql.Query,
	maxPairs int, seed int64) []LabeledPair {
	return RelatedPairsP(log, level, q, maxPairs, seed, 0)
}

// RelatedPairsP is RelatedPairs with an explicit worker bound (<= 0
// means GOMAXPROCS); the result is identical at every setting.
func RelatedPairsP(log *joblog.Log, level features.Level, q *pxql.Query,
	maxPairs int, seed int64, parallelism int) []LabeledPair {

	d := features.NewDeriver(log.Schema, level)
	ps := enumerateRelated(log, d, q, q.Despite, maxPairs,
		stats.DeriveSeed(seed, "related-pairs"), parallelism)
	out := make([]LabeledPair, len(ps.refs))
	for i, ref := range ps.refs {
		out[i] = LabeledPair{
			A:        log.Records[ref.a],
			B:        log.Records[ref.b],
			IA:       ref.a,
			IB:       ref.b,
			Observed: ps.labels[i],
		}
	}
	return out
}

// EvalAtomOnPair evaluates a single derived-feature atom over a pair; it
// exists so baseline implementations share PerfXplain's evaluation
// semantics exactly.
func EvalAtomOnPair(d *features.Deriver, a pxql.Atom, x, y *joblog.Record) bool {
	v, ok := d.ValueByName(x, y, a.Feature)
	return ok && a.Eval(v)
}
