package core

// matrixAtom is a candidate predicate lowered for evaluation against
// pair-matrix rows: one plane offset plus the comparison, no boxed
// values, no map lookups. Algorithm 1's working-set filtering, candidate
// scoring and per-prefix diagnostics all run on these.
//
// Generated atoms always agree in kind with their derived column (the
// constant is a threshold over that column or one of its observed
// values), so the lowering never needs the interpreter's mixed-kind
// rejection paths; an atom that cannot match any cell lowers to a
// constant-false evaluator all the same.
//
// Beyond the per-row eval, each atom has a batched kernel (fillRange)
// that scans its matrix plane and fills a selection bitmap — one bit per
// pair, built with branchless mask arithmetic. bitmapCache memoizes one
// bitmap per distinct atom over the whole matrix, filled tile-by-tile on
// the worker pool so planes stay cache-resident; every candidate clause
// is then composed by word-AND + popcount instead of re-walking pairs.

import (
	"perfxplain/internal/bitset"
	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/par"
	"perfxplain/internal/pxql"
)

type matrixAtom struct {
	numOff int // >= 0: numeric plane comparison
	symOff int // >= 0: symbol plane equality/inequality
	op     pxql.Op
	num    float64
	ne     bool
	syms   []uint64
}

// newMatrixAtom lowers an atom over the derived feature featIdx for
// matrix-row evaluation, byte-identical to Atom.Eval on the boxed vector
// the row engine would have materialized.
func newMatrixAtom(d *features.Deriver, in *joblog.Intern, featIdx int, a pxql.Atom) matrixAtom {
	ma := matrixAtom{numOff: -1, symOff: -1}
	if a.Value.IsMissing() {
		return ma // matches nothing; both offsets stay -1
	}
	if off := d.NumOffset(featIdx); off >= 0 {
		if a.Value.Kind != joblog.Numeric {
			return ma
		}
		ma.numOff, ma.op, ma.num = off, a.Op, a.Value.Num
		return ma
	}
	if a.Value.Kind != joblog.Nominal || (a.Op != pxql.OpEq && a.Op != pxql.OpNe) {
		return ma
	}
	ma.symOff = d.SymOffset(featIdx)
	ma.ne = a.Op == pxql.OpNe
	ma.syms = d.SymsForString(in, featIdx, a.Value.Str)
	return ma
}

// eval evaluates the atom against one matrix row. Missing cells satisfy
// no operator, mirroring Atom.Eval; the scalar comparison cores are
// pxql's, shared with the compiled predicate evaluator.
func (ma *matrixAtom) eval(m *features.PairMatrix, row int) bool {
	if ma.numOff >= 0 {
		x := m.NumAt(row, ma.numOff)
		if x != x { // NaN: missing
			return false
		}
		return pxql.EvalNumOp(ma.op, x, ma.num)
	}
	if ma.symOff >= 0 {
		s := m.SymAt(row, ma.symOff)
		if s == features.MissingSym {
			return false
		}
		return pxql.EvalSymSet(ma.syms, s, ma.ne)
	}
	return false
}

// evalPrefix evaluates the conjunction of the first w lowered atoms on a
// row — EvalVector for matrix rows. Kept as the reference the bitmap
// compose path is tested against.
func evalPrefix(mas []matrixAtom, w int, m *features.PairMatrix, row int) bool {
	for k := 0; k < w; k++ {
		if !mas[k].eval(m, row) {
			return false
		}
	}
	return true
}

// fillRange writes the atom's selection bits for matrix rows [lo, hi)
// into sel (bit i of sel is row i; lo must be word-aligned). Whole words
// are overwritten, with tail bits beyond hi left clear, so disjoint
// tiles can be filled concurrently. A non-nil live mask restricts the
// fill: words with no live bit are skipped and keep their current value
// (zero in a fresh bitmap) — bits in live words are exact, which is all
// a consumer masking by (a subset of) live can observe. The operator
// dispatch and kernel construction are hoisted out of the loops;
// selection words are built with pxql's shared NumKernel/SymKernel bit
// constructors — the same exactness rules as the compiled pair kernels,
// so the bits equal eval row for row by construction.
func (ma *matrixAtom) fillRange(m *features.PairMatrix, lo, hi int, sel, live bitset.Set) {
	switch {
	case ma.numOff >= 0:
		kern := pxql.NewNumKernel(ma.op, ma.num)
		stride := m.NumStride()
		plane := m.Num
		idx := lo*stride + ma.numOff
		for w, base := lo>>6, lo; base < hi; w, base = w+1, base+64 {
			end := min(base+64, hi)
			if live != nil && live[w] == 0 {
				idx += (end - base) * stride
				continue
			}
			var selW uint64
			for i := base; i < end; i++ {
				selW |= kern.Bit(plane[idx]) << uint(i-base)
				idx += stride
			}
			sel[w] = selW
		}
	case ma.symOff >= 0:
		kern := pxql.NewSymKernel(ma.syms, ma.ne)
		stride := m.SymStride()
		plane := m.Sym
		idx := lo*stride + ma.symOff
		for w, base := lo>>6, lo; base < hi; w, base = w+1, base+64 {
			end := min(base+64, hi)
			if live != nil && live[w] == 0 {
				idx += (end - base) * stride
				continue
			}
			var selW uint64
			for i := base; i < end; i++ {
				selW |= kern.Bit(plane[idx]) << uint(i-base)
				idx += stride
			}
			sel[w] = selW
		}
	default: // constant false
		for w, base := lo>>6, lo; base < hi; w, base = w+1, base+64 {
			if live != nil && live[w] == 0 {
				continue
			}
			sel[w] = 0
		}
	}
}

// rowTile is the tile height of batched matrix scans: 4096 rows = 64
// bitmap words per atom, so a tile's slice of every plane column and the
// bitmap words it produces stay cache-resident while several atoms scan
// it.
const rowTile = 4096

// atomKey identifies an atom for bitmap memoization: feature, operator
// and constant — exactly the identity containsAtom deduplicates clauses
// by.
type atomKey struct {
	feature string
	op      pxql.Op
	kind    joblog.Kind
	num     float64
	nanNum  bool
	str     string
}

func keyOf(a pxql.Atom) atomKey {
	k := atomKey{feature: a.Feature, op: a.Op, kind: a.Value.Kind, num: a.Value.Num, str: a.Value.Str}
	if k.num != k.num {
		// NaN never compares equal to itself, so it would defeat the map
		// lookup; every NaN constant behaves identically under every
		// operator, so one canonical key is exact.
		k.num, k.nanNum = 0, true
	}
	return k
}

// bitmapCache memoizes per-atom selection bitmaps over one pair matrix,
// so candidate scoring and working-set filtering evaluate each distinct
// atom at most once per matrix and compose with word operations.
//
// Cached bitmaps are exact only on words that were live in the working
// set when they were filled (dead words stay zero — see getAll), which
// is sound for every cache consumer because the working set shrinks
// monotonically: scoring and filtering always mask by the current
// working-set bitmap, a subset of the live words at fill time. Code
// needing full-matrix bits (the prefix diagnostics) must fill its own
// bitmap with fillRange instead of reading the cache.
type bitmapCache struct {
	m       *features.PairMatrix
	workers int
	cache   map[atomKey]bitset.Set
	// counts memoizes each cached bitmap's popcount at fill time. The
	// fill is restricted to the then-live working-set words and the
	// working set shrinks monotonically, so the stored count is an upper
	// bound on any later AndCount against the current working set — a
	// zero means the candidate can never select a pair again.
	counts map[atomKey]int
}

func newBitmapCache(m *features.PairMatrix, workers int) *bitmapCache {
	return &bitmapCache{m: m, workers: workers,
		cache: make(map[atomKey]bitset.Set), counts: make(map[atomKey]int)}
}

// getAll returns the bitmaps of a candidate batch plus each bitmap's
// fill-time popcount (an upper bound on the candidate's satisfied count,
// see counts), filling the cache misses tile-parallel: the unit of work
// is (tile, atom), consecutive units share a tile, so one tile's plane
// rows are scanned by every missing atom while hot. Words with no live
// bit in the working set are skipped (left zero) — once a selective
// clause collapses the working set, losing candidates cost plane reads
// only where pairs remain. Scheduling never affects the bits — each unit
// writes a disjoint word range of its own atom's bitmap.
func (bc *bitmapCache) getAll(cands []candidate, live bitset.Set) ([]bitset.Set, []int) {
	sels := make([]bitset.Set, len(cands))
	ubs := make([]int, len(cands))
	var missKey []atomKey
	var missSel []bitset.Set
	var missMA []matrixAtom
	missAt := make([]int, 0, len(cands))
	for ci := range cands {
		k := keyOf(cands[ci].atom)
		if sel, ok := bc.cache[k]; ok {
			sels[ci] = sel
			ubs[ci] = bc.counts[k]
			continue
		}
		sel := bitset.Make(bc.m.N)
		bc.cache[k] = sel
		sels[ci] = sel
		missKey = append(missKey, k)
		missSel = append(missSel, sel)
		missMA = append(missMA, cands[ci].ma)
		missAt = append(missAt, ci)
	}
	if len(missSel) == 0 {
		return sels, ubs
	}
	tiles := (bc.m.N + rowTile - 1) / rowTile
	par.Do(tiles*len(missSel), bc.workers, func(u int) {
		t, k := u/len(missSel), u%len(missSel)
		lo := t * rowTile
		hi := min(lo+rowTile, bc.m.N)
		missMA[k].fillRange(bc.m, lo, hi, missSel[k], live)
	})
	for k := range missSel {
		n := missSel[k].Count()
		bc.counts[missKey[k]] = n
		ubs[missAt[k]] = n
	}
	return sels, ubs
}
