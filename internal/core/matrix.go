package core

// matrixAtom is a candidate predicate lowered for evaluation against
// pair-matrix rows: one plane offset plus the comparison, no boxed
// values, no map lookups. Algorithm 1's working-set filtering, candidate
// scoring and per-prefix diagnostics all run on these.
//
// Generated atoms always agree in kind with their derived column (the
// constant is a threshold over that column or one of its observed
// values), so the lowering never needs the interpreter's mixed-kind
// rejection paths; an atom that cannot match any cell lowers to a
// constant-false evaluator all the same.

import (
	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
)

type matrixAtom struct {
	numOff int // >= 0: numeric plane comparison
	symOff int // >= 0: symbol plane equality/inequality
	op     pxql.Op
	num    float64
	ne     bool
	syms   []uint64
}

// newMatrixAtom lowers an atom over the derived feature featIdx for
// matrix-row evaluation, byte-identical to Atom.Eval on the boxed vector
// the row engine would have materialized.
func newMatrixAtom(d *features.Deriver, in *joblog.Intern, featIdx int, a pxql.Atom) matrixAtom {
	ma := matrixAtom{numOff: -1, symOff: -1}
	if a.Value.IsMissing() {
		return ma // matches nothing; both offsets stay -1
	}
	if off := d.NumOffset(featIdx); off >= 0 {
		if a.Value.Kind != joblog.Numeric {
			return ma
		}
		ma.numOff, ma.op, ma.num = off, a.Op, a.Value.Num
		return ma
	}
	if a.Value.Kind != joblog.Nominal || (a.Op != pxql.OpEq && a.Op != pxql.OpNe) {
		return ma
	}
	ma.symOff = d.SymOffset(featIdx)
	ma.ne = a.Op == pxql.OpNe
	ma.syms = d.SymsForString(in, featIdx, a.Value.Str)
	return ma
}

// eval evaluates the atom against one matrix row. Missing cells satisfy
// no operator, mirroring Atom.Eval; the scalar comparison cores are
// pxql's, shared with the compiled predicate evaluator.
func (ma *matrixAtom) eval(m *features.PairMatrix, row int) bool {
	if ma.numOff >= 0 {
		x := m.NumAt(row, ma.numOff)
		if x != x { // NaN: missing
			return false
		}
		return pxql.EvalNumOp(ma.op, x, ma.num)
	}
	if ma.symOff >= 0 {
		s := m.SymAt(row, ma.symOff)
		if s == features.MissingSym {
			return false
		}
		return pxql.EvalSymSet(ma.syms, s, ma.ne)
	}
	return false
}

// evalPrefix evaluates the conjunction of the first w lowered atoms on a
// row — EvalVector for matrix rows.
func evalPrefix(mas []matrixAtom, w int, m *features.PairMatrix, row int) bool {
	for k := 0; k < w; k++ {
		if !mas[k].eval(m, row) {
			return false
		}
	}
	return true
}
