package core

// BenchmarkIndexedEnumeration measures the sub-quadratic enumeration
// layer against the full blocked walk it short-circuits, on a skewed
// 100k-job log: ~1000 blocking groups with harmonically decaying sizes
// (the largest holds ~13k jobs) and a per-group constant `cpus` column,
// so the despite conjunct `cpus > 8.5` zone-kills ~90% of the groups —
// including most of the heavy head — before any pair is walked.
//
//   - enum/full:    enumerateRelatedOpt with pruning disabled — every
//     group's pair space is tiled through EvalBlock.
//   - enum/indexed: the production path — zone maps prove dead groups
//     empty from per-column [min, max] alone.
//
// Both paths are byte-identical by construction (keepP is computed
// before pruning; see blockedGroupsOpt), which the JSON emitter asserts
// at full scale before timing anything.
//
// Run with:
//
//	go test -bench BenchmarkIndexedEnumeration -benchmem ./internal/core
//
// The same measurements feed the BENCH_subq.json perf artifact:
//
//	BENCH_SUBQ_JSON=$PWD/BENCH_subq.json go test -run TestBenchSubqJSON ./internal/core
//
// which CI runs and uploads on every push, failing the build when the
// indexed path loses its ≥5x margin.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
)

const (
	subqJobs   = 100000
	subqGroups = 1000
	subqSeed   = 41
)

type subqFixture struct {
	log *joblog.Log
	d   *features.Deriver
	q   *pxql.Query
}

var (
	subqOnce sync.Once
	subq     *subqFixture
)

// subqFix builds the benchmark log: group k (0-based rank) receives a
// share of the 100k jobs proportional to 1/(k+1), cpus is the constant
// k%10 within the group, and duration = x is an independent uniform
// draw per job.
func subqFix() *subqFixture {
	subqOnce.Do(func() {
		rng := rand.New(rand.NewSource(17))
		schema := joblog.NewSchema([]joblog.Field{
			{Name: "script", Kind: joblog.Nominal},
			{Name: "cpus", Kind: joblog.Numeric},
			{Name: "x", Kind: joblog.Numeric},
			{Name: "duration", Kind: joblog.Numeric},
		})
		log := joblog.NewLog(schema)
		h := harmonic(subqGroups)
		i := 0
		for k := 0; k < subqGroups && i < subqJobs; k++ {
			size := int(float64(subqJobs) / (float64(k+1) * h))
			if size < 2 {
				size = 2
			}
			for s := 0; s < size && i < subqJobs; s++ {
				x := 10 + rng.Float64()*1000
				log.MustAppend(&joblog.Record{ID: fmt.Sprintf("j%05d", i), Values: []joblog.Value{
					joblog.Str(fmt.Sprintf("script-%04d", k)),
					joblog.Num(float64(k % 10)),
					joblog.Num(x),
					joblog.Num(x),
				}})
				i++
			}
		}
		subq = &subqFixture{log: log, d: features.NewDeriver(schema, features.Level3), q: zoneQuery()}
	})
	return subq
}

func benchEnumFull(b *testing.B) {
	fx := subqFix()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		subqSink = len(enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, subqSeed, 1,
			enumOpts{noPrune: true, noSeek: true}).refs)
	}
}

func benchEnumIndexed(b *testing.B) {
	fx := subqFix()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		subqSink = len(enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, subqSeed, 1,
			enumOpts{}).refs)
	}
}

var subqSink int

var subqBenches = []struct {
	name string
	fn   func(*testing.B)
}{
	{"enum/full", benchEnumFull},
	{"enum/indexed", benchEnumIndexed},
}

func BenchmarkIndexedEnumeration(b *testing.B) {
	for _, bench := range subqBenches {
		b.Run(bench.name, bench.fn)
	}
}

// TestBenchSubqJSON runs the enumeration benchmarks programmatically and
// writes the BENCH_subq.json summary consumed by CI. Skipped unless
// BENCH_SUBQ_JSON names the output path.
func TestBenchSubqJSON(t *testing.T) {
	path := os.Getenv("BENCH_SUBQ_JSON")
	if path == "" {
		t.Skip("set BENCH_SUBQ_JSON=<path> to emit the benchmark summary")
	}
	fx := subqFix()

	// The benchmark is only meaningful if the two paths do identical
	// work: assert byte-identity at full scale before timing.
	full := enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, subqSeed, 1, enumOpts{noPrune: true, noSeek: true})
	indexed := enumerateRelatedOpt(fx.log, fx.d, fx.q, fx.q.Despite, subqSeed, 1, enumOpts{})
	if !reflect.DeepEqual(full.refs, indexed.refs) || !reflect.DeepEqual(full.labels, indexed.labels) {
		t.Fatalf("indexed enumeration differs from the full walk (%d vs %d pairs)",
			len(indexed.refs), len(full.refs))
	}

	type entry struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	// Best of three runs per benchmark: shared CI runners are noisy, and
	// the minimum ns/op is the measurement least polluted by neighbours —
	// the 5x gate below compares engine speed, not runner contention.
	results := make(map[string]entry, len(subqBenches))
	for _, bench := range subqBenches {
		var best entry
		for run := 0; run < 3; run++ {
			r := testing.Benchmark(bench.fn)
			e := entry{
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if run == 0 || e.NsPerOp < best.NsPerOp {
				best = e
			}
		}
		results[bench.name] = best
	}
	speedup := 0.0
	if bm := results["enum/indexed"].NsPerOp; bm > 0 {
		speedup = results["enum/full"].NsPerOp / bm
	}
	groups, _ := blockedGroups(fx.log, fx.q.Despite, 0)
	allGroups, _ := blockedGroupsOpt(fx.log, fx.q.Despite, 0, false, false)
	out := map[string]any{
		"jobs":          fx.log.Len(),
		"groups":        len(allGroups),
		"groups_alive":  len(groups),
		"related_pairs": len(indexed.refs),
		"benchmarks":    results,
		"speedup":       map[string]float64{"enum": speedup},
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, blob)

	// Gate: zone-map pruning must clear the 5x bar over the full walk on
	// the skewed log.
	if speedup < 5 {
		t.Errorf("enum speedup = %.2fx, want >= 5x", speedup)
	}
}
