package core

// Wilson-adaptive stratified budgets. The one-shot allocator
// (stratifyBudgets) spends the pair budget proportionally to each
// blocking group's pair-space size — a reasonable prior, but blind to
// where the estimates are actually uncertain: a huge stratum whose
// pairs are all labelled the same way needs few draws, while a small
// stratum sitting near a 50/50 label split needs many. The two-pass
// scheme here spends a pilot fraction per the proportional rule, reads
// each stratum's label counts off the pilot pairs, and allocates the
// remainder proportional to (Wilson interval width × pair space) — the
// width is the uncertainty of the stratum's observed-rate estimate, the
// pair space is how much population that uncertainty covers.
//
// Determinism: the allocation is a pure function of the pilot pair set
// (itself shard-count- and parallelism-invariant by the PR 7 draw
// contract) and the group list, computed once on the coordinator and
// shipped to workers as explicit per-group budgets. groupDraws is
// prefix-monotonic in the budget — the first b draws of a group's
// counter stream are the same whatever the target — so the final
// round's draw set contains the pilot round's, and the final walk alone
// is the output: no cross-round merging, no double counting.

import (
	"context"

	"perfxplain/internal/pxql"
	"perfxplain/internal/stats"
)

// enumerateAdaptive runs the two-pass Wilson-adaptive stratified
// enumeration: a pilot round under the proportional rule, the allocator
// over its counts, then the final round whose pair set is the output.
// Both rounds share the seed — their draw sets nest — and route through
// the shard runner when one is configured.
func (e *Explainer) enumerateAdaptive(ctx context.Context, q *pxql.Query, despite pxql.Predicate, seed uint64) (*pairSet, error) {
	// The same group list every stratified planner derives (pruned, never
	// seek-filtered — draws key on group identity; see seek.go).
	groups, _ := blockedGroupsOpt(e.log, despite, 0, true, false)
	pilotBs := stratifyBudgets(groups, pilotBudget(e.cfg.SampleBudget, e.cfg.SamplePilot))
	pilot, err := e.runStratifiedRound(ctx, q, despite, seed, groups, pilotBs, RoundPilot)
	if err != nil {
		return nil, err
	}
	finalBs := adaptiveBudgets(groups, pilotBs, pilot, e.cfg.SampleBudget)
	return e.runStratifiedRound(ctx, q, despite, seed, groups, finalBs, RoundFinal)
}

// runStratifiedRound executes one stratified enumeration round under
// explicit per-group budgets, in process or on the configured runner.
// budgets is parallel to groups, which must equal the blocked group
// list of (log, despite) — both paths re-derive or reuse exactly that
// list, so the walks agree pair for pair.
func (e *Explainer) runStratifiedRound(ctx context.Context, q *pxql.Query, despite pxql.Predicate, seed uint64,
	groups [][]int, budgets []int, round int) (*pairSet, error) {

	// Each stratified round is a cancellation checkpoint: the pilot and
	// final rounds are the two bounded units of adaptive enumeration.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.cfg.Runner == nil {
		return enumerateRelatedOpt(e.log, e.d, q, despite, seed, e.cfg.Parallelism,
			enumOpts{stratified: true, budgets: budgets}), nil
	}
	e.prefetchLayout()
	specs := planEnumStratifiedOver(e.cfg.Layout, e.log, e.d.Level(), q, despite, groups, budgets, e.cfg.Shards, seed, round)
	return e.runEnumSpecs(specs)
}

// adaptiveBudgets turns pilot-round counts into final per-group pair
// budgets summing (approximately — floors and whole-group absorption
// bound the excess) to the total budget. groups and pilotBudgets are
// the group list and allocation the pilot round ran with; pilot is the
// pilot round's labelled pair set addressed by global record index.
// Every final budget is at least its group's pilot budget and at least
// stratumFloor, and never exceeds the group's pair space.
func adaptiveBudgets(groups [][]int, pilotBudgets []int, pilot *pairSet, budget int) []int {
	// Attribute each pilot pair to its stratum via the pair's first
	// member: ordered pairs never cross blocking groups.
	rowGroup := make(map[int]int)
	for gi, g := range groups {
		for _, ri := range g {
			rowGroup[ri] = gi
		}
	}
	rel := make([]int, len(groups)) // related pairs seen in the stratum
	obs := make([]int, len(groups)) // … labelled performed-as-observed
	for i, ref := range pilot.refs {
		gi, ok := rowGroup[ref.a]
		if !ok {
			continue // cannot happen: pilot pairs come from these groups
		}
		rel[gi]++
		if pilot.labels[i] {
			obs[gi]++
		}
	}

	// Remainder to distribute beyond the pilot spend. Weights are Wilson
	// 95% interval widths of the per-stratum observed rate — a stratum
	// with no related pilot pairs has width 1, maximal uncertainty —
	// scaled by pair space so wide intervals over large populations win.
	spent := 0
	for _, b := range pilotBudgets {
		spent += b
	}
	remainder := budget - spent
	if remainder < 0 {
		remainder = 0
	}
	weights := make([]float64, len(groups))
	var wsum float64
	for gi, g := range groups {
		lo, hi := stats.Wilson(obs[gi], rel[gi], wilsonZ)
		weights[gi] = (hi - lo) * float64(pairCount64(len(g)))
		wsum += weights[gi]
	}

	bs := make([]int, len(groups))
	for gi, g := range groups {
		m := pairCount64(len(g))
		b := uint64(pilotBudgets[gi])
		if wsum > 0 {
			b += uint64(float64(remainder) * weights[gi] / wsum)
		}
		if b < stratumFloor {
			b = stratumFloor
		}
		// Same whole-group absorption as the one-shot rule: b >= ceil(3m/4).
		if b >= m-m/4 {
			b = m
		}
		bs[gi] = clampInt(b)
	}
	return bs
}

// pilotBudget is the pilot round's total spend: the configured fraction
// of the pair budget, floored at one stratumFloor so a tiny fraction
// still measures something.
func pilotBudget(budget int, frac float64) int {
	b := int(float64(budget) * frac)
	if b < stratumFloor {
		b = stratumFloor
	}
	if b > budget {
		b = budget
	}
	return b
}
