package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
)

// The pipeline's contract: parallelism is a throughput knob, never a
// semantics knob. Enumeration, explanation and evaluation must be
// byte-identical at every worker count.

func TestEnumerateRelatedIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	log := syntheticLog(80, rng)
	d := features.NewDeriver(log.Schema, features.Level3)
	q := &pxql.Query{
		Despite:  pxql.Predicate{{Feature: "site_issame", Op: pxql.OpEq, Value: joblog.Str("T")}},
		Observed: pxql.Predicate{{Feature: "duration_compare", Op: pxql.OpEq, Value: joblog.Str("GT")}},
		Expected: pxql.Predicate{{Feature: "duration_compare", Op: pxql.OpEq, Value: joblog.Str("SIM")}},
	}
	// Exercise both the uncapped and the subsampled (counter-based keep)
	// paths.
	for _, maxPairs := range []int{0, 300} {
		base := enumerateRelated(log, d, q, q.Despite, maxPairs, 99, 1)
		for _, p := range []int{2, 4, runtime.GOMAXPROCS(0)} {
			got := enumerateRelated(log, d, q, q.Despite, maxPairs, 99, p)
			if !reflect.DeepEqual(got.refs, base.refs) || !reflect.DeepEqual(got.labels, base.labels) {
				t.Fatalf("maxPairs=%d: enumeration at parallelism %d differs from serial (%d vs %d pairs)",
					maxPairs, p, len(got.refs), len(base.refs))
			}
		}
	}
}

func TestExplainIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	log := twoFactorLog(90, rng)
	explain := func(p int) string {
		ex, err := NewExplainer(log, Config{Width: 3, DespiteWidth: 2, Seed: 13, MaxPairs: 2000, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		q := gtQuery(log, ex.Deriver())
		if q == nil {
			t.Fatal("no pair of interest")
		}
		x, err := ex.ExplainWithDespite(q)
		if err != nil {
			t.Fatal(err)
		}
		return x.String()
	}
	base := explain(1)
	for _, p := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := explain(p); got != base {
			t.Errorf("explanation at parallelism %d differs:\n%s\nvs serial:\n%s", p, got, base)
		}
	}
}

func TestEvaluateIdenticalAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	log := syntheticLog(70, rng)
	d := features.NewDeriver(log.Schema, features.Level3)
	q := gtQuery(log, d)
	x := &Explanation{
		Because: pxql.Predicate{{Feature: "x_compare", Op: pxql.OpEq, Value: joblog.Str("GT")}},
	}
	base, err := EvaluateExplanationP(log, features.Level3, q, x, 500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got, err := EvaluateExplanationP(log, features.Level3, q, x, 500, 3, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("metrics at parallelism %d = %+v, serial %+v", p, got, base)
		}
	}
}

// Distinct blocking tuples must never share a key, whatever bytes the
// values contain (the old \x1f separator aliased values containing the
// separator byte).
func TestBlockKeyCollisionProof(t *testing.T) {
	mk := func(a, b string) *joblog.Record {
		return &joblog.Record{ID: a + "|" + b, Values: []joblog.Value{joblog.Str(a), joblog.Str(b)}}
	}
	cases := [][2]*joblog.Record{
		{mk("x\x1f", "y"), mk("x", "\x1fy")},
		{mk("x", "y"), mk("xy", "")},
		{mk("1:3", "a"), mk("1", "3:a")},
		{mk("", "ab"), mk("a", "b")},
	}
	key := func(r *joblog.Record) string {
		k, ok := appendBlockKey(nil, r, []int{0, 1})
		if !ok {
			t.Fatalf("record %q rendered as unblockable", r.ID)
		}
		return string(k)
	}
	for _, c := range cases {
		k1, k2 := key(c[0]), key(c[1])
		if k1 == k2 {
			t.Errorf("records %q and %q alias to block key %q", c[0].ID, c[1].ID, k1)
		}
	}
	// Same tuple must still map to the same key.
	if key(mk("u", "v")) != key(mk("u", "v")) {
		t.Error("identical tuples produced different keys")
	}
}
