package core

// Tests for the sub-quadratic enumeration layer (blocking-group zone
// pruning, stratified sampling, top-K candidate pruning): exact mode must
// stay byte-identical with the indexes and pruner on, the stratified
// mode must be invariant under parallelism and shard count, and the
// approximate explanations must agree with the exact ones within the
// advertised Wilson confidence bounds.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
	"perfxplain/internal/stats"
)

// zoneSkewedLog builds a log blocked by `script` into nGroups groups of
// skewed sizes, where `cpus` is constant within each group (cpus =
// group % 10) — so a `cpus > 8.5` conjunct provably kills every group
// but the 9-cpu ones via zone maps — and duration = x.
func zoneSkewedLog(n, nGroups int, rng *rand.Rand) *joblog.Log {
	schema := joblog.NewSchema([]joblog.Field{
		{Name: "script", Kind: joblog.Nominal},
		{Name: "cpus", Kind: joblog.Numeric},
		{Name: "x", Kind: joblog.Numeric},
		{Name: "duration", Kind: joblog.Numeric},
	})
	log := joblog.NewLog(schema)
	for i := 0; i < n; i++ {
		// Skew group sizes harmonically: group k gets ~1/(k+1) of the mass.
		k := 0
		for r := rng.Float64() * harmonic(nGroups); r > 0; k++ {
			r -= 1 / float64(k+1)
		}
		if k > 0 {
			k--
		}
		x := 10 + rng.Float64()*1000
		log.MustAppend(&joblog.Record{ID: fmt.Sprintf("z%04d", i), Values: []joblog.Value{
			joblog.Str(fmt.Sprintf("script-%03d", k)),
			joblog.Num(float64(k % 10)),
			joblog.Num(x),
			joblog.Num(x),
		}})
	}
	return log
}

func harmonic(n int) float64 {
	h := 0.0
	for k := 1; k <= n; k++ {
		h += 1 / float64(k)
	}
	return h
}

func zoneQuery() *pxql.Query {
	return &pxql.Query{
		Despite: pxql.Predicate{
			{Feature: "script_issame", Op: pxql.OpEq, Value: features.ValT},
			{Feature: "cpus", Op: pxql.OpGt, Value: joblog.Num(8.5)},
		},
		Observed: pxql.Predicate{{Feature: "duration_compare", Op: pxql.OpEq, Value: joblog.Str("GT")}},
		Expected: pxql.Predicate{{Feature: "duration_compare", Op: pxql.OpEq, Value: joblog.Str("SIM")}},
	}
}

// TestZonePruneExact pins the pruner's exactness contract: enumeration
// with zone-map group pruning is byte-identical to the unpruned walk —
// uncapped and Bernoulli-capped — while actually dropping groups.
func TestZonePruneExact(t *testing.T) {
	log := zoneSkewedLog(400, 40, rand.New(rand.NewSource(21)))
	d := features.NewDeriver(log.Schema, features.Level3)
	q := zoneQuery()

	pruned, _ := blockedGroupsOpt(log, q.Despite, 0, true, false)
	all, _ := blockedGroupsOpt(log, q.Despite, 0, false, false)
	if len(pruned) >= len(all) {
		t.Fatalf("pruner dropped no groups (%d of %d kept); the fixture is toothless", len(pruned), len(all))
	}

	for _, maxPairs := range []int{0, 500} {
		base := enumerateRelatedOpt(log, d, q, q.Despite, 77, 1, enumOpts{maxPairs: maxPairs, noPrune: true, noSeek: true})
		got := enumerateRelatedOpt(log, d, q, q.Despite, 77, 1, enumOpts{maxPairs: maxPairs})
		if !reflect.DeepEqual(got.refs, base.refs) || !reflect.DeepEqual(got.labels, base.labels) {
			t.Errorf("maxPairs=%d: pruned enumeration differs from unpruned (%d vs %d pairs)",
				maxPairs, len(got.refs), len(base.refs))
		}
	}
}

// TestStratifiedInvariance pins the stratified sampler's determinism
// story: the drawn pair set is identical at every parallelism, and the
// union of PlanEnumShardsStratified specs — executed independently and
// merged in spec order — equals the in-process walk at shard counts
// 1, 2 and 7.
func TestStratifiedInvariance(t *testing.T) {
	log := zoneSkewedLog(300, 25, rand.New(rand.NewSource(23)))
	d := features.NewDeriver(log.Schema, features.Level3)
	q := zoneQuery()
	const budget = 800
	seed := stats.DeriveSeed(5, "strat-test")

	base := enumerateRelatedOpt(log, d, q, q.Despite, seed, 1, enumOpts{stratified: true, budget: budget})
	if len(base.refs) == 0 {
		t.Fatal("stratified enumeration found no related pairs; fixture is toothless")
	}
	for _, workers := range []int{2, 4} {
		got := enumerateRelatedOpt(log, d, q, q.Despite, seed, workers, enumOpts{stratified: true, budget: budget})
		if !reflect.DeepEqual(got.refs, base.refs) || !reflect.DeepEqual(got.labels, base.labels) {
			t.Errorf("workers=%d: stratified enumeration differs from serial", workers)
		}
	}
	for _, nShards := range []int{1, 2, 7} {
		specs := PlanEnumShardsStratified(log, features.Level3, q, q.Despite, budget, nShards, seed)
		if len(specs) != nShards {
			t.Fatalf("shards=%d: planned %d specs", nShards, len(specs))
		}
		refs, labels := runPlan(t, specs)
		if !reflect.DeepEqual(refs, base.refs) || !reflect.DeepEqual(labels, base.labels) {
			t.Errorf("shards=%d: merged stratified shard output differs from in-process (%d vs %d pairs)",
				nShards, len(refs), len(base.refs))
		}
	}
}

// TestStratifiedBudgetCoverage pins what stratification is for: under a
// budget that Bernoulli thinning would spread thin, every surviving
// blocking group still contributes draws (rare strata are not starved),
// and the walked pair count respects the total budget's order of
// magnitude.
func TestStratifiedBudgetCoverage(t *testing.T) {
	log := zoneSkewedLog(400, 30, rand.New(rand.NewSource(29)))
	q := zoneQuery()
	// Unpruned groups: the allocator's contract is over whatever group
	// list it is handed, and the unpruned one has the size skew we want.
	groups, _ := blockedGroupsOpt(log, q.Despite, 0, false, false)
	space := 0
	for _, g := range groups {
		space += len(g) * (len(g) - 1)
	}
	const budget = 600
	if space <= budget {
		t.Fatalf("fixture pair space %d not above budget %d; allocation is trivial", space, budget)
	}
	budgets := stratifyBudgets(groups, budget)
	if len(budgets) != len(groups) {
		t.Fatalf("budgets/groups length mismatch: %d vs %d", len(budgets), len(groups))
	}
	total := 0
	for gi, g := range groups {
		m := len(g) * (len(g) - 1)
		b := budgets[gi]
		if m > 0 && b == 0 {
			t.Errorf("group %d (%d members) starved: budget 0", gi, len(g))
		}
		if b > m {
			t.Errorf("group %d: budget %d exceeds pair space %d", gi, b, m)
		}
		if b < m && b < stratumFloor {
			t.Errorf("group %d: partial budget %d below the stratum floor %d", gi, b, stratumFloor)
		}
		total += b
	}
	// Floors and whole-group takes can push past the nominal budget, but
	// only boundedly so.
	if total < budget/2 || total > budget+stratumFloor*len(groups) {
		t.Errorf("total allocation %d is out of band for budget %d over %d groups", total, budget, len(groups))
	}

	// A budget covering the whole space keeps every pair.
	for gi, b := range stratifyBudgets(groups, 0) {
		if m := len(groups[gi]) * (len(groups[gi]) - 1); b != m {
			t.Errorf("budget<=0: group %d allocated %d of %d", gi, b, m)
		}
	}
}

// TestGroupDraws pins the draw stream: pure in (seed, g0, n, budget),
// sorted, distinct, in range, and exactly min(budget, n·(n−1)) long.
func TestGroupDraws(t *testing.T) {
	for _, tc := range []struct{ n, budget int }{
		{10, 16}, {10, 200}, {50, 16}, {2, 1}, {2, 5}, {7, 42},
	} {
		m := tc.n * (tc.n - 1)
		want := tc.budget
		if want > m {
			want = m
		}
		ts := groupDraws(99, 1234, tc.n, tc.budget)
		if len(ts) != want {
			t.Fatalf("n=%d budget=%d: drew %d, want %d", tc.n, tc.budget, len(ts), want)
		}
		seen := make(map[uint64]bool, len(ts))
		for i, v := range ts {
			if v >= uint64(m) {
				t.Fatalf("n=%d budget=%d: draw %d out of range", tc.n, tc.budget, v)
			}
			if seen[v] {
				t.Fatalf("n=%d budget=%d: duplicate draw %d", tc.n, tc.budget, v)
			}
			seen[v] = true
			if i > 0 && ts[i-1] >= v {
				t.Fatalf("n=%d budget=%d: draws not sorted ascending", tc.n, tc.budget)
			}
		}
		again := groupDraws(99, 1234, tc.n, tc.budget)
		if !reflect.DeepEqual(ts, again) {
			t.Fatalf("n=%d budget=%d: draws not deterministic", tc.n, tc.budget)
		}
		// Seed sensitivity only applies to genuinely partial draws: a
		// budget covering the whole space keeps every pair at any seed.
		other := groupDraws(100, 1234, tc.n, tc.budget)
		if want < m && m > 4 && reflect.DeepEqual(ts, other) {
			t.Errorf("n=%d budget=%d: different seeds drew identical sets", tc.n, tc.budget)
		}
	}
	if got := groupDraws(1, 0, 5, 0); len(got) != 0 {
		t.Errorf("budget 0 drew %d pairs", len(got))
	}
}

// bindZonePair binds a pair of interest satisfying despite ∧ observed.
func bindZonePair(t *testing.T, log *joblog.Log, d *features.Deriver, q *pxql.Query) {
	t.Helper()
	for _, a := range log.Records {
		for _, b := range log.Records {
			if a == b {
				continue
			}
			if q.Despite.EvalPair(d, a, b) && q.Observed.EvalPair(d, a, b) && !q.Expected.EvalPair(d, a, b) {
				q.ID1, q.ID2 = a.ID, b.ID
				return
			}
		}
	}
	t.Fatal("no pair of interest satisfies the query")
}

// TestStratifiedStatisticalEquivalence is the approximate mode's
// acceptance test: on a planted-signal log the stratified explainer must
// find the same cause as the exact one, its Wilson intervals must be
// populated and ordered, the exact precision must fall inside the
// advertised bound, and the whole stratified pipeline must be
// byte-identical across shard counts 1, 2 and 7.
func TestStratifiedStatisticalEquivalence(t *testing.T) {
	log := zoneSkewedLog(350, 20, rand.New(rand.NewSource(31)))
	q := zoneQuery()
	d := features.NewDeriver(log.Schema, features.Level3)
	bindZonePair(t, log, d, q)

	exact, err := func() (*Explanation, error) {
		ex, err := NewExplainer(log, Config{Width: 1, Seed: 11})
		if err != nil {
			return nil, err
		}
		return ex.Explain(q)
	}()
	if err != nil {
		t.Fatal(err)
	}

	strat := func(shards int) *Explanation {
		cfg := Config{Width: 1, Seed: 11, SampleMode: SampleStratified, SampleBudget: 2500}
		if shards > 0 {
			cfg.Shards = shards
			cfg.Runner = serialEvalRunner{}
		}
		ex, err := NewExplainer(log, cfg)
		if err != nil {
			t.Fatal(err)
		}
		x, err := ex.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	base := strat(0)

	// Same discovered cause: duration is x, so the one-atom clause must be
	// an x-derived predicate in both modes.
	causeOf := func(x *Explanation) string {
		if len(x.Because) != 1 {
			t.Fatalf("because = %v", x.Because)
		}
		raw, _ := features.ParseName(x.Because[0].Feature)
		return raw
	}
	if causeOf(exact) != "x" || causeOf(base) != "x" {
		t.Errorf("planted cause not recovered: exact=%v stratified=%v", exact.Because, base.Because)
	}

	// Wilson bounds: populated, ordered, and containing both the
	// stratified estimate and the exact value. eps absorbs float rounding
	// at the interval ends: with every sampled pair positive the Wilson
	// upper bound is mathematically exactly 1 but computes to 1 − 2ulp.
	const eps = 1e-9
	if len(base.Atoms) != 1 {
		t.Fatalf("stratified atoms = %+v", base.Atoms)
	}
	st := base.Atoms[0]
	if !(st.PrecisionLo <= st.Precision+eps && st.Precision <= st.PrecisionHi+eps && st.PrecisionLo < st.PrecisionHi) {
		t.Errorf("precision bound [%v, %v] does not bracket %v", st.PrecisionLo, st.PrecisionHi, st.Precision)
	}
	if !(st.GeneralityLo <= st.Generality+eps && st.Generality <= st.GeneralityHi+eps && st.GeneralityLo < st.GeneralityHi) {
		t.Errorf("generality bound [%v, %v] does not bracket %v", st.GeneralityLo, st.GeneralityHi, st.Generality)
	}
	if exact.TrainPrecision < st.PrecisionLo-eps || exact.TrainPrecision > st.PrecisionHi+eps {
		t.Errorf("exact precision %v outside the stratified 95%% bound [%v, %v]",
			exact.TrainPrecision, st.PrecisionLo, st.PrecisionHi)
	}
	if !(base.TrainRelevanceLo <= base.TrainRelevance+eps && base.TrainRelevance <= base.TrainRelevanceHi+eps) {
		t.Errorf("relevance bound [%v, %v] does not bracket %v",
			base.TrainRelevanceLo, base.TrainRelevanceHi, base.TrainRelevance)
	}
	if exact.TrainRelevanceLo != 0 || exact.TrainRelevanceHi != 0 || exact.Atoms[0].PrecisionHi != 0 {
		t.Error("exact mode populated confidence bounds; they must stay zero")
	}

	// Shard invariance of the full stratified pipeline.
	want := fmt.Sprintf("%v %+v %v %v", base.Because, base.Atoms, base.TrainRelevance, base.RelatedPairs)
	for _, shards := range []int{1, 2, 7} {
		x := strat(shards)
		got := fmt.Sprintf("%v %+v %v %v", x.Because, x.Atoms, x.TrainRelevance, x.RelatedPairs)
		if got != want {
			t.Errorf("shards=%d: stratified explanation differs:\n%s\nvs in-process:\n%s", shards, got, want)
		}
	}
}

// TestTopKPruning pins the candidate cap: an exact-mode explainer with
// TopK wide enough to keep everything matches TopK=0 exactly, and a
// too-narrow TopK still yields a valid explanation over the planted
// signal (the top-gain feature survives the cut).
func TestTopKPruning(t *testing.T) {
	log := zoneSkewedLog(200, 10, rand.New(rand.NewSource(37)))
	q := zoneQuery()
	d := features.NewDeriver(log.Schema, features.Level3)
	bindZonePair(t, log, d, q)

	explain := func(topK int) string {
		ex, err := NewExplainer(log, Config{Width: 2, Seed: 3, TopK: topK})
		if err != nil {
			t.Fatal(err)
		}
		x, err := ex.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		return x.String()
	}
	base := explain(0)
	if wide := explain(1000); wide != base {
		t.Errorf("TopK=1000 changed the explanation:\n%s\nvs\n%s", wide, base)
	}
	narrow := explain(1)
	ex, err := NewExplainer(log, Config{Width: 2, Seed: 3, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, err := ex.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Because) == 0 {
		t.Fatalf("TopK=1 produced an empty clause (%s)", narrow)
	}
	for _, a := range x.Because {
		if raw, _ := features.ParseName(a.Feature); raw != "x" {
			t.Errorf("TopK=1 kept a non-top-gain feature: %v", x.Because)
		}
	}
}
