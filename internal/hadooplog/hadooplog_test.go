package hadooplog

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"perfxplain/internal/excite"
	"perfxplain/internal/mapreduce"
	"perfxplain/internal/pig"
)

func sampleJob(t *testing.T) *mapreduce.JobResult {
	t.Helper()
	res, err := mapreduce.Run(mapreduce.JobSpec{
		ID:     "job-0001",
		Script: pig.SimpleGroupBy(),
		Input:  excite.DatasetForBytes("excite-x30", 300<<20),
		Config: mapreduce.Config{
			NumInstances: 4, BlockSize: 64 << 20, ReduceTasksFactor: 1.5,
			IOSortFactor: 10, Seed: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTrip(t *testing.T) {
	job := sampleJob(t)
	var buf bytes.Buffer
	if err := WriteJob(&buf, job); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != job.ID || back.Script != job.Script {
		t.Errorf("identity: %q/%q vs %q/%q", back.ID, back.Script, job.ID, job.Script)
	}
	if back.Config != job.Config {
		t.Errorf("config: %+v vs %+v", back.Config, job.Config)
	}
	if back.NumMapTasks != job.NumMapTasks || back.NumReduceTasks != job.NumReduceTasks {
		t.Errorf("task counts differ")
	}
	if math.Abs(back.Duration()-job.Duration()) > 0.002 {
		t.Errorf("duration %v vs %v", back.Duration(), job.Duration())
	}
	if len(back.Tasks) != len(job.Tasks) {
		t.Fatalf("task count %d vs %d", len(back.Tasks), len(job.Tasks))
	}
	for i, bt := range back.Tasks {
		ot := job.Tasks[i]
		if bt.ID != ot.ID || bt.Type != ot.Type || bt.Host != ot.Host ||
			bt.TrackerName != ot.TrackerName {
			t.Fatalf("task %d identity mismatch", i)
		}
		if math.Abs(bt.Duration()-ot.Duration()) > 0.002 {
			t.Errorf("task %d duration %v vs %v", i, bt.Duration(), ot.Duration())
		}
		if bt.InputBytes != ot.InputBytes || bt.OutputRecords != ot.OutputRecords ||
			bt.ShuffleBytes != ot.ShuffleBytes || bt.SpilledRecords != ot.SpilledRecords {
			t.Errorf("task %d counters mismatch", i)
		}
		if bt.JobID != job.ID {
			t.Errorf("task %d JobID = %q", i, bt.JobID)
		}
		if bt.Ganglia != nil {
			t.Errorf("task %d: ganglia should not round-trip through hadoop logs", i)
		}
	}
}

func TestEscaping(t *testing.T) {
	record, attrs, err := parseLine(`Job JOBID="has \"quotes\" and \\backslash" .`)
	if err != nil {
		t.Fatal(err)
	}
	if record != "Job" || attrs["JOBID"] != `has "quotes" and \backslash` {
		t.Errorf("parsed %q", attrs["JOBID"])
	}
	if got := escape(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("escape = %q", got)
	}
}

func TestParseCounters(t *testing.T) {
	cs, err := parseCounters(`{(g1)(A)(10)},{(g2)(B)(20)}`)
	if err != nil {
		t.Fatal(err)
	}
	if cs["A"] != 10 || cs["B"] != 20 {
		t.Errorf("counters = %v", cs)
	}
	if _, err := parseCounters("garbage"); err == nil {
		t.Error("bad counters should error")
	}
	if _, err := parseCounters("{(a)(b)(notanum)}"); err == nil {
		t.Error("non-numeric counter should error")
	}
	empty, err := parseCounters("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty counters = %v, %v", empty, err)
	}
}

func TestReadJobErrors(t *testing.T) {
	cases := map[string]string{
		"no job record": `Meta VERSION="1" .`,
		"unknown type":  `Weird X="1" .`,
		"bad submit":    `Job JOBID="j" SUBMIT_TIME="xx" FINISH_TIME="1" .`,
		"bad attr":      `Job JOBID .`,
	}
	for name, in := range cases {
		if _, err := ReadJob(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMapOnlyJobRoundTrip(t *testing.T) {
	res, err := mapreduce.Run(mapreduce.JobSpec{
		ID:     "job-0002",
		Script: pig.SimpleFilter(),
		Input:  excite.DatasetForBytes("excite-x30", 150<<20),
		Config: mapreduce.Config{
			NumInstances: 2, BlockSize: 64 << 20, ReduceTasksFactor: 1,
			IOSortFactor: 10, Seed: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJob(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumReduceTasks != 0 || len(back.Tasks) != len(res.Tasks) {
		t.Errorf("map-only round trip: %d reduces, %d tasks", back.NumReduceTasks, len(back.Tasks))
	}
}

func TestSortedCounterNames(t *testing.T) {
	names := SortedCounterNames()
	if len(names) != 11 {
		t.Errorf("counter catalogue = %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}
