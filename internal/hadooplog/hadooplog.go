// Package hadooplog reads and writes Hadoop-0.20-style job history files,
// the raw log format the paper's PerfXplain implementation scraped its
// per-task features from ("PerfXplain extracts all details it can from
// the MapReduce log file", Section 6.1).
//
// The format is line-oriented: a record type followed by KEY="value"
// attributes and a terminating " .". Counters are embedded in a COUNTERS
// attribute encoded as {(group)(name)(value)} triples. Ganglia metrics
// are not part of Hadoop's history files — the paper collects them
// separately — so a round trip through this format preserves counters,
// placement and timing but not monitoring data.
package hadooplog

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"perfxplain/internal/excite"
	"perfxplain/internal/mapreduce"
)

// Counter group and name constants mirroring Hadoop's.
const (
	groupFS   = "FileSystemCounters"
	groupTask = "org.apache.hadoop.mapred.Task$Counter"
)

// WriteJob renders a job's history in Hadoop style.
func WriteJob(w io.Writer, job *mapreduce.JobResult) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "Meta VERSION=\"1\" .\n")

	jobAttrs := []attr{
		{"JOBID", job.ID},
		{"JOBNAME", job.Script},
		{"SUBMIT_TIME", ms(job.Start)},
		{"FINISH_TIME", ms(job.Finish)},
		{"JOB_STATUS", "SUCCESS"},
		{"TOTAL_MAPS", strconv.Itoa(job.NumMapTasks)},
		{"TOTAL_REDUCES", strconv.Itoa(job.NumReduceTasks)},
		{"NUM_INSTANCES", strconv.Itoa(job.Config.NumInstances)},
		{"DFS_BLOCK_SIZE", strconv.FormatInt(job.Config.BlockSize, 10)},
		{"REDUCE_TASKS_FACTOR", strconv.FormatFloat(job.Config.ReduceTasksFactor, 'g', -1, 64)},
		{"IO_SORT_FACTOR", strconv.Itoa(job.Config.IOSortFactor)},
		{"SIM_SEED", strconv.FormatInt(job.Config.Seed, 10)},
		{"INPUT_NAME", job.Input.Name},
		{"INPUT_BYTES", strconv.FormatInt(job.Input.Bytes, 10)},
		{"INPUT_RECORDS", strconv.FormatInt(job.Input.Records, 10)},
	}
	writeLine(bw, "Job", jobAttrs)

	for _, t := range job.Tasks {
		counters := counterString([]counter{
			{groupFS, "HDFS_BYTES_READ", t.HDFSBytesRead},
			{groupFS, "HDFS_BYTES_WRITTEN", t.HDFSBytesWritten},
			{groupFS, "FILE_BYTES_WRITTEN", t.FileBytesWritten},
			{groupTask, "INPUT_BYTES", t.InputBytes},
			{groupTask, "INPUT_RECORDS", t.InputRecords},
			{groupTask, "OUTPUT_BYTES", t.OutputBytes},
			{groupTask, "OUTPUT_RECORDS", t.OutputRecords},
			{groupTask, "REDUCE_SHUFFLE_BYTES", t.ShuffleBytes},
			{groupTask, "SPILLED_RECORDS", t.SpilledRecords},
			{groupTask, "COMBINE_INPUT_RECORDS", t.CombineInputRecords},
			{groupTask, "COMBINE_OUTPUT_RECORDS", t.CombineOutputRecords},
		})
		taskAttrs := []attr{
			{"TASKID", t.ID},
			{"TASK_TYPE", t.Type},
			{"TASK_INDEX", strconv.Itoa(t.Index)},
			{"START_TIME", ms(t.Start)},
			{"FINISH_TIME", ms(t.Finish)},
			{"HOSTNAME", t.Host},
			{"TRACKER_NAME", t.TrackerName},
			{"SLOT", strconv.Itoa(t.Slot)},
			{"SHUFFLE_TIME", ms(t.ShuffleTime)},
			{"SORT_TIME", ms(t.SortTime)},
			{"MERGE_PASSES", strconv.Itoa(t.MergePasses)},
			{"CPU_MILLISECONDS", ms(t.CPUSeconds)},
			{"GC_TIME_MILLIS", ms(t.GCTime)},
			{"COUNTERS", counters},
		}
		writeLine(bw, "Task", taskAttrs)
	}
	return bw.Flush()
}

type attr struct{ key, value string }

type counter struct {
	group, name string
	value       int64
}

func ms(seconds float64) string {
	return strconv.FormatInt(int64(math.Round(seconds*1000)), 10)
}

func fromMS(s string) (float64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return float64(v) / 1000, nil
}

func writeLine(w io.Writer, record string, attrs []attr) {
	parts := make([]string, 0, len(attrs)+1)
	parts = append(parts, record)
	for _, a := range attrs {
		parts = append(parts, a.key+"=\""+escape(a.value)+"\"")
	}
	fmt.Fprintf(w, "%s .\n", strings.Join(parts, " "))
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

func counterString(cs []counter) string {
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "{(%s)(%s)(%d)}", c.group, c.name, c.value)
	}
	return b.String()
}

// parseCounters decodes a {(group)(name)(value)},... string.
func parseCounters(s string) (map[string]int64, error) {
	out := make(map[string]int64)
	if s == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if !strings.HasPrefix(item, "{(") || !strings.HasSuffix(item, ")}") {
			return nil, fmt.Errorf("hadooplog: bad counter %q", item)
		}
		inner := item[1 : len(item)-1] // (group)(name)(value)
		fields := strings.Split(strings.Trim(inner, "()"), ")(")
		if len(fields) != 3 {
			return nil, fmt.Errorf("hadooplog: bad counter triple %q", item)
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("hadooplog: bad counter value in %q: %w", item, err)
		}
		out[fields[1]] = v
	}
	return out, nil
}

// parseLine splits a history line into its record type and attributes.
func parseLine(line string) (record string, attrs map[string]string, err error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), " .")
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return line, map[string]string{}, nil
	}
	record = line[:sp]
	attrs = make(map[string]string)
	rest := line[sp+1:]
	i := 0
	for i < len(rest) {
		for i < len(rest) && rest[i] == ' ' {
			i++
		}
		if i >= len(rest) {
			break
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("hadooplog: malformed attribute at %q", rest[i:])
		}
		key := rest[i : i+eq]
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return "", nil, fmt.Errorf("hadooplog: attribute %s lacks quoted value", key)
		}
		i++
		var b strings.Builder
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				b.WriteByte(rest[i+1])
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		attrs[key] = b.String()
	}
	return record, attrs, nil
}

// ReadJob parses one job history stream written by WriteJob. Ganglia
// metrics are absent from the format and left nil.
func ReadJob(r io.Reader) (*mapreduce.JobResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	job := &mapreduce.JobResult{}
	seenJob := false
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		record, attrs, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		switch record {
		case "Meta":
			// version marker, ignored
		case "Job":
			if err := fillJob(job, attrs); err != nil {
				return nil, err
			}
			seenJob = true
		case "Task":
			t, err := fillTask(attrs)
			if err != nil {
				return nil, err
			}
			t.JobID = job.ID
			job.Tasks = append(job.Tasks, t)
		default:
			return nil, fmt.Errorf("hadooplog: unknown record type %q", record)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenJob {
		return nil, fmt.Errorf("hadooplog: no Job record found")
	}
	return job, nil
}

func fillJob(job *mapreduce.JobResult, attrs map[string]string) error {
	job.ID = attrs["JOBID"]
	job.Script = attrs["JOBNAME"]
	var err error
	if job.Start, err = fromMS(attrs["SUBMIT_TIME"]); err != nil {
		return fmt.Errorf("hadooplog: SUBMIT_TIME: %w", err)
	}
	if job.Finish, err = fromMS(attrs["FINISH_TIME"]); err != nil {
		return fmt.Errorf("hadooplog: FINISH_TIME: %w", err)
	}
	geti := func(key string) int {
		v, _ := strconv.Atoi(attrs[key])
		return v
	}
	job.NumMapTasks = geti("TOTAL_MAPS")
	job.NumReduceTasks = geti("TOTAL_REDUCES")
	job.Config.NumInstances = geti("NUM_INSTANCES")
	job.Config.BlockSize, _ = strconv.ParseInt(attrs["DFS_BLOCK_SIZE"], 10, 64)
	job.Config.ReduceTasksFactor, _ = strconv.ParseFloat(attrs["REDUCE_TASKS_FACTOR"], 64)
	job.Config.IOSortFactor = geti("IO_SORT_FACTOR")
	job.Config.Seed, _ = strconv.ParseInt(attrs["SIM_SEED"], 10, 64)
	bytes, _ := strconv.ParseInt(attrs["INPUT_BYTES"], 10, 64)
	records, _ := strconv.ParseInt(attrs["INPUT_RECORDS"], 10, 64)
	job.Input = excite.Dataset{Name: attrs["INPUT_NAME"], Bytes: bytes, Records: records}
	return nil
}

func fillTask(attrs map[string]string) (*mapreduce.TaskResult, error) {
	t := &mapreduce.TaskResult{
		ID:          attrs["TASKID"],
		Type:        attrs["TASK_TYPE"],
		Host:        attrs["HOSTNAME"],
		TrackerName: attrs["TRACKER_NAME"],
	}
	var err error
	if t.Start, err = fromMS(attrs["START_TIME"]); err != nil {
		return nil, fmt.Errorf("hadooplog: START_TIME: %w", err)
	}
	if t.Finish, err = fromMS(attrs["FINISH_TIME"]); err != nil {
		return nil, fmt.Errorf("hadooplog: FINISH_TIME: %w", err)
	}
	t.Index, _ = strconv.Atoi(attrs["TASK_INDEX"])
	t.Slot, _ = strconv.Atoi(attrs["SLOT"])
	t.ShuffleTime, _ = fromMS(attrs["SHUFFLE_TIME"])
	t.SortTime, _ = fromMS(attrs["SORT_TIME"])
	t.MergePasses, _ = strconv.Atoi(attrs["MERGE_PASSES"])
	t.CPUSeconds, _ = fromMS(attrs["CPU_MILLISECONDS"])
	t.GCTime, _ = fromMS(attrs["GC_TIME_MILLIS"])

	counters, err := parseCounters(attrs["COUNTERS"])
	if err != nil {
		return nil, err
	}
	t.HDFSBytesRead = counters["HDFS_BYTES_READ"]
	t.HDFSBytesWritten = counters["HDFS_BYTES_WRITTEN"]
	t.FileBytesWritten = counters["FILE_BYTES_WRITTEN"]
	t.InputBytes = counters["INPUT_BYTES"]
	t.InputRecords = counters["INPUT_RECORDS"]
	t.OutputBytes = counters["OUTPUT_BYTES"]
	t.OutputRecords = counters["OUTPUT_RECORDS"]
	t.ShuffleBytes = counters["REDUCE_SHUFFLE_BYTES"]
	t.SpilledRecords = counters["SPILLED_RECORDS"]
	t.CombineInputRecords = counters["COMBINE_INPUT_RECORDS"]
	t.CombineOutputRecords = counters["COMBINE_OUTPUT_RECORDS"]
	return t, nil
}

// SortedCounterNames exists for documentation tooling: the counter names
// this package round-trips.
func SortedCounterNames() []string {
	names := []string{
		"HDFS_BYTES_READ", "HDFS_BYTES_WRITTEN", "FILE_BYTES_WRITTEN",
		"INPUT_BYTES", "INPUT_RECORDS", "OUTPUT_BYTES", "OUTPUT_RECORDS",
		"REDUCE_SHUFFLE_BYTES", "SPILLED_RECORDS",
		"COMBINE_INPUT_RECORDS", "COMBINE_OUTPUT_RECORDS",
	}
	sort.Strings(names)
	return names
}
