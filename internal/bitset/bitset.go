// Package bitset provides the flat selection bitmaps of the batched
// predicate engine: one bit per pair, 64 pairs per word, little-endian
// within the word (bit i lives at word i>>6, position i&63).
//
// The predicate kernels (pxql compiled atoms, core's matrix atoms) fill
// these bitmaps with branch-light compare loops; clause composition then
// happens word-wise — And, AndNot, Or, popcount — so evaluating a
// conjunction over a pair shard costs O(atoms × pairs) plane scans plus
// O(clauses × words) bit operations instead of O(clauses × pairs × width)
// per-pair compares.
//
// Sets carry no length of their own: the owner sizes them with Make(n)
// and keeps the bit count alongside, the same convention as
// joblog.Bitmap. Kernels that fill a set for n bits must leave the tail
// bits of the last word clear (Ones does; every word-wise operation
// preserves it), so Count and the fused AndCount* helpers never need a
// length argument.
package bitset

import "math/bits"

// Set is a fixed-capacity bitmap backed by a []uint64.
type Set []uint64

// Words returns the number of words backing n bits.
func Words(n int) int { return (n + 63) >> 6 }

// Make returns a set with capacity for n bits, all clear.
func Make(n int) Set { return make(Set, Words(n)) }

// Get reports whether bit i is set.
func (s Set) Get(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetBit sets bit i.
func (s Set) SetBit(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Zero clears every bit.
func (s Set) Zero() {
	for w := range s {
		s[w] = 0
	}
}

// Ones sets the first n bits and clears any tail bits of the last word,
// the canonical "full selection" a conjunction kernel starts from.
func (s Set) Ones(n int) {
	for w := range s {
		s[w] = ^uint64(0)
	}
	if tail := uint(n) & 63; tail != 0 {
		s[len(s)-1] = (1 << tail) - 1
	}
}

// CopyFrom overwrites s with o. The two must have equal word counts.
func (s Set) CopyFrom(o Set) { copy(s, o) }

// AndWith intersects s with o in place (s &= o).
func (s Set) AndWith(o Set) {
	for w := range s {
		s[w] &= o[w]
	}
}

// AndNotWith clears from s every bit set in o (s &^= o).
func (s Set) AndNotWith(o Set) {
	for w := range s {
		s[w] &^= o[w]
	}
}

// OrWith unions o into s (s |= o).
func (s Set) OrWith(o Set) {
	for w := range s {
		s[w] |= o[w]
	}
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns the popcount of a ∧ b without materializing it — the
// fused compose step of candidate scoring.
func AndCount(a, b Set) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w])
	}
	return n
}

// AndCount3 returns the popcount of a ∧ b ∧ c without materializing it.
func AndCount3(a, b, c Set) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w] & c[w])
	}
	return n
}

// ForEach calls fn for every set bit in ascending order — the iteration
// primitive that keeps bitmap-composed pair sets in the exact order the
// per-pair loops they replaced produced.
func (s Set) ForEach(fn func(i int)) {
	for w, word := range s {
		base := w << 6
		for word != 0 {
			fn(base + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// BlitFrom copies the first n bits of src into s starting at bit offset
// off, leaving every other bit of s untouched — the concatenation
// primitive for stitching per-segment bitmaps (whose lengths are rarely
// word-aligned) into one log-wide bitmap. s must have capacity for
// off+n bits.
func (s Set) BlitFrom(src Set, off, n int) {
	if n <= 0 {
		return
	}
	if uint(off)&63 == 0 {
		// Word-aligned fast path: whole-word copies plus a masked tail.
		w := off >> 6
		full := n >> 6
		copy(s[w:w+full], src[:full])
		if tail := uint(n) & 63; tail != 0 {
			mask := uint64(1)<<tail - 1
			s[w+full] = s[w+full]&^mask | src[full]&mask
		}
		return
	}
	for i := 0; i < n; i++ {
		if src.Get(i) {
			s.SetBit(off + i)
		} else {
			s[(off+i)>>6] &^= 1 << (uint(off+i) & 63)
		}
	}
}

// FromBools builds a set from a bool slice (bit i = bs[i]).
func FromBools(bs []bool) Set {
	s := Make(len(bs))
	for i, b := range bs {
		if b {
			s.SetBit(i)
		}
	}
	return s
}

// B2u converts a comparison result to a 0/1 word without a branch (the
// compiler lowers it to SETcc) — the bit-build primitive every batched
// kernel shifts into its selection word.
func B2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
