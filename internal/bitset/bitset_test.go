package bitset

import (
	"math/rand"
	"testing"
)

// refBits is the boolean-slice model every word-wise operation is
// checked against.
func refBits(n int, rng *rand.Rand) ([]bool, Set) {
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = rng.Intn(2) == 0
	}
	return bs, FromBools(bs)
}

func TestOpsMatchBoolModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		as, a := refBits(n, rng)
		bs, b := refBits(n, rng)
		cs, c := refBits(n, rng)

		if len(a) != Words(n) {
			t.Fatalf("n=%d: %d words, want %d", n, len(a), Words(n))
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != as[i] {
				t.Fatalf("n=%d: Get(%d) = %v, want %v", n, i, a.Get(i), as[i])
			}
		}

		wantCount := 0
		wantAnd, wantAnd3 := 0, 0
		for i := 0; i < n; i++ {
			if as[i] {
				wantCount++
			}
			if as[i] && bs[i] {
				wantAnd++
			}
			if as[i] && bs[i] && cs[i] {
				wantAnd3++
			}
		}
		if got := a.Count(); got != wantCount {
			t.Errorf("n=%d: Count = %d, want %d", n, got, wantCount)
		}
		if got := AndCount(a, b); got != wantAnd {
			t.Errorf("n=%d: AndCount = %d, want %d", n, got, wantAnd)
		}
		if got := AndCount3(a, b, c); got != wantAnd3 {
			t.Errorf("n=%d: AndCount3 = %d, want %d", n, got, wantAnd3)
		}

		and := Make(n)
		and.CopyFrom(a)
		and.AndWith(b)
		or := Make(n)
		or.CopyFrom(a)
		or.OrWith(b)
		andNot := Make(n)
		andNot.CopyFrom(a)
		andNot.AndNotWith(b)
		for i := 0; i < n; i++ {
			if and.Get(i) != (as[i] && bs[i]) {
				t.Fatalf("n=%d: And bit %d wrong", n, i)
			}
			if or.Get(i) != (as[i] || bs[i]) {
				t.Fatalf("n=%d: Or bit %d wrong", n, i)
			}
			if andNot.Get(i) != (as[i] && !bs[i]) {
				t.Fatalf("n=%d: AndNot bit %d wrong", n, i)
			}
		}
	}
}

func TestOnesClearsTail(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		s := Make(n)
		s.Zero()
		s.Ones(n)
		if got := s.Count(); got != n {
			t.Errorf("Ones(%d).Count = %d, want %d", n, got, n)
		}
		for i := 0; i < n; i++ {
			if !s.Get(i) {
				t.Fatalf("Ones(%d): bit %d clear", n, i)
			}
		}
	}
}

func TestForEachOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bs, s := refBits(300, rng)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	var want []int
	for i, b := range bs {
		if b {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach[%d] = %d, want %d (order must be ascending)", k, got[k], want[k])
		}
	}
}

func TestB2u(t *testing.T) {
	if B2u(true) != 1 || B2u(false) != 0 {
		t.Fatal("B2u broken")
	}
}

// TestBlitFromMatchesBoolModel checks the aligned fast path and the
// unaligned fallback against the boolean model: the first n bits of src
// land at off, and every bit outside [off, off+n) survives untouched.
func TestBlitFromMatchesBoolModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, total := range []int{1, 64, 65, 130, 300} {
		for _, off := range []int{0, 1, 63, 64, 65, 128, 129} {
			for _, n := range []int{0, 1, 63, 64, 65, 127, 130} {
				if off >= total || off+n > total {
					continue
				}
				dsts, dst := refBits(total, rng)
				srcs, src := refBits(n, rng)
				want := append([]bool(nil), dsts...)
				copy(want[off:off+n], srcs)

				dst.BlitFrom(src, off, n)
				for i := 0; i < total; i++ {
					if dst.Get(i) != want[i] {
						t.Fatalf("total=%d off=%d n=%d: bit %d = %v, want %v",
							total, off, n, i, dst.Get(i), want[i])
					}
				}
			}
		}
	}
}
