package features

// Columnar derivation: the same Table 1 pair features as derive(), but
// computed straight from a joblog.Columns view into flat planes instead
// of boxed joblog.Value structs.
//
// Derived features split across two planes by their derived-schema kind:
//
//   - numeric derived features (base features of numeric raws) live in a
//     float64 plane; NaN encodes missing. The sentinel is exact: a base
//     feature is present only when the two raw values compare equal with
//     ==, which no NaN ever does, so a present base value is never NaN.
//   - nominal derived features live in a uint64 symbol plane holding a
//     packed, per-column encoding: issame uses 0/1 (F/T), compare uses
//     0/1/2 (LT/SIM/GT), base features carry the raw value's intern ID,
//     and diff features pack the two intern IDs as x<<32|y. Symbols are
//     only ever compared within one derived column, so the family-local
//     encodings cannot collide; MissingSym (all ones) encodes missing and
//     cannot alias a diff pack because intern IDs stay below 1<<31.
//
// A PairMatrix is the row-major materialization of both planes for a set
// of pairs: one Fill per pair writes every derived feature with zero
// allocation, and scoring code gathers columns by (plane, offset).
//
// Raw fields flagged HasAlien (value kind disagreeing with the schema —
// see joblog/columns.go) take the boxed derive() path for their base
// feature, so columnar results match the row engine exactly; issame,
// compare and diff only ever read the planes, which hold v.Num / interned
// v.Str for alien cells too — precisely what derive() reads.

import (
	"math"

	"perfxplain/internal/joblog"
	"perfxplain/internal/stats"
)

// MissingSym is the missing sentinel of the symbol plane.
const MissingSym = ^uint64(0)

// Symbol codes of the issame and compare families.
const (
	SymF = 0 // issame F
	SymT = 1 // issame T

	SymLT  = 0 // compare LT
	SymSIM = 1 // compare SIM
	SymGT  = 2 // compare GT
)

// DiffSym packs a diff feature's two raw intern IDs.
func DiffSym(x, y uint32) uint64 { return uint64(x)<<32 | uint64(y) }

// rawPlan is one raw field's slice of the plane layout: the offsets of
// its derived features, -1 when a family is absent at the deriver's
// level (or lives in the other plane). MaterializeInto walks this plan
// so each raw cell is read once, not once per derived family.
type rawPlan struct {
	rawIdx     int
	isSameOff  int // symbol plane
	compareOff int // symbol plane; -1 below Level2
	diffOff    int // symbol plane; -1 below Level2
	baseNumOff int // numeric plane; -1 unless Level3 and numeric raw
	baseSymOff int // symbol plane; -1 unless Level3 and nominal raw
	baseIdx    int // derived index of the base feature (alien fallback)
}

// buildPlanes precomputes, for every derived feature, which plane it
// lives in and at which row offset (exactly one of numOff/symOff is
// >= 0), plus the per-raw-field materialization plan.
func (d *Deriver) buildPlanes() {
	d.numOff = make([]int, len(d.mapping))
	d.symOff = make([]int, len(d.mapping))
	plans := make([]rawPlan, d.raw.Len())
	for r := range plans {
		plans[r] = rawPlan{rawIdx: r, isSameOff: -1, compareOff: -1,
			diffOff: -1, baseNumOff: -1, baseSymOff: -1, baseIdx: -1}
	}
	for i, e := range d.mapping {
		d.numOff[i], d.symOff[i] = -1, -1
		if d.derived.Field(i).Kind == joblog.Numeric {
			d.numOff[i] = d.numW
			d.numW++
		} else {
			d.symOff[i] = d.symW
			d.symW++
		}
		p := &plans[e.rawIdx]
		switch e.kind {
		case IsSame:
			p.isSameOff = d.symOff[i]
		case Compare:
			p.compareOff = d.symOff[i]
		case Diff:
			p.diffOff = d.symOff[i]
		case Base:
			p.baseNumOff = d.numOff[i]
			p.baseSymOff = d.symOff[i]
			p.baseIdx = i
		}
	}
	d.rawPlans = plans
}

// NumWidth returns the per-pair width of the numeric plane.
func (d *Deriver) NumWidth() int { return d.numW }

// SymWidth returns the per-pair width of the symbol plane.
func (d *Deriver) SymWidth() int { return d.symW }

// NumOffset returns the numeric-plane offset of a derived feature, or -1
// when it lives in the symbol plane.
func (d *Deriver) NumOffset(derivedIdx int) int { return d.numOff[derivedIdx] }

// SymOffset returns the symbol-plane offset of a derived feature, or -1
// when it lives in the numeric plane.
func (d *Deriver) SymOffset(derivedIdx int) int { return d.symOff[derivedIdx] }

// DeriveNum computes a numeric-plane derived feature for the ordered
// record pair (a, b); NaN means missing. Calling it for a symbol-plane
// feature is a programming error.
func (d *Deriver) DeriveNum(cols *joblog.Columns, a, b, derivedIdx int) float64 {
	e := d.mapping[derivedIdx]
	if e.kind != Base {
		panic("features: DeriveNum on a non-base feature")
	}
	c := cols.Col(e.rawIdx)
	if c.Miss.Get(a) || c.Miss.Get(b) {
		return math.NaN()
	}
	if c.HasAlien && (c.Alien(a) || c.Alien(b)) {
		v := derive(c.Kind, cols.Value(a, e.rawIdx), cols.Value(b, e.rawIdx), Base)
		if v.Kind == joblog.Numeric {
			return v.Num
		}
		// A non-numeric derived value cannot live in this plane; encode
		// missing, which every plane consumer treats identically (it can
		// satisfy no predicate and no threshold).
		return math.NaN()
	}
	return BaseNumFast(c, a, b)
}

// IsSameSym computes the issame symbol for the pair (a, b) of one raw
// column: T/F, or MissingSym. Exact for alien cells too — the planes
// hold v.Num / interned v.Str, precisely what derive() compares.
func IsSameSym(c *joblog.Col, a, b int) uint64 {
	if c.Miss.Get(a) || c.Miss.Get(b) {
		return MissingSym
	}
	if c.Kind == joblog.Numeric {
		if stats.Similar(c.Num[a], c.Num[b]) {
			return SymT
		}
		return SymF
	}
	if c.Sym[a] == c.Sym[b] {
		return SymT
	}
	return SymF
}

// CompareSym computes the compare symbol for the pair (a, b) of one raw
// column: LT/SIM/GT for numeric raws, MissingSym otherwise.
func CompareSym(c *joblog.Col, a, b int) uint64 {
	if c.Kind != joblog.Numeric || c.Miss.Get(a) || c.Miss.Get(b) {
		return MissingSym
	}
	switch {
	case stats.Similar(c.Num[a], c.Num[b]):
		return SymSIM
	case c.Num[a] < c.Num[b]:
		return SymLT
	default:
		return SymGT
	}
}

// DiffSymOf computes the packed diff symbol for the pair (a, b) of one
// raw column: x<<32|y for nominal raws, MissingSym otherwise.
func DiffSymOf(c *joblog.Col, a, b int) uint64 {
	if c.Kind != joblog.Nominal || c.Miss.Get(a) || c.Miss.Get(b) {
		return MissingSym
	}
	return DiffSym(c.Sym[a], c.Sym[b])
}

// BaseSymFast computes the base symbol of a nominal raw column for the
// pair (a, b), valid only for columns without alien cells (callers with
// HasAlien columns must go through DeriveSym's boxed fallback).
func BaseSymFast(c *joblog.Col, a, b int) uint64 {
	if c.Miss.Get(a) || c.Miss.Get(b) || c.Sym[a] != c.Sym[b] {
		return MissingSym
	}
	return uint64(c.Sym[a])
}

// BaseNumFast computes the base value of a numeric raw column for the
// pair (a, b) — the shared value when the two agree exactly, NaN
// otherwise. Valid only for columns without alien cells.
func BaseNumFast(c *joblog.Col, a, b int) float64 {
	if c.Miss.Get(a) || c.Miss.Get(b) || c.Num[a] != c.Num[b] {
		return math.NaN()
	}
	return c.Num[a]
}

// DeriveSym computes a symbol-plane derived feature for the ordered
// record pair (a, b); MissingSym means missing. Calling it for a
// numeric-plane feature is a programming error.
func (d *Deriver) DeriveSym(cols *joblog.Columns, a, b, derivedIdx int) uint64 {
	e := d.mapping[derivedIdx]
	c := cols.Col(e.rawIdx)
	switch e.kind {
	case IsSame:
		return IsSameSym(c, a, b)
	case Compare:
		return CompareSym(c, a, b)
	case Diff:
		return DiffSymOf(c, a, b)
	case Base:
		if c.Miss.Get(a) || c.Miss.Get(b) {
			return MissingSym
		}
		if c.HasAlien && (c.Alien(a) || c.Alien(b)) {
			v := derive(c.Kind, cols.Value(a, e.rawIdx), cols.Value(b, e.rawIdx), Base)
			if v.Kind == joblog.Nominal {
				if id, ok := cols.Intern().Lookup(v.Str); ok {
					return uint64(id)
				}
			}
			return MissingSym
		}
		if c.Kind != joblog.Nominal {
			panic("features: DeriveSym on a numeric base feature")
		}
		return BaseSymFast(c, a, b)
	default:
		panic("features: bad kind")
	}
}

// ValueCol is Value over the columnar view: the boxed derived value of
// one feature of the pair (a, b), identical to Value on the underlying
// records.
func (d *Deriver) ValueCol(cols *joblog.Columns, a, b, derivedIdx int) joblog.Value {
	e := d.mapping[derivedIdx]
	if d.numOff[derivedIdx] >= 0 {
		x := d.DeriveNum(cols, a, b, derivedIdx)
		if math.IsNaN(x) {
			// Distinguish true missing from an alien-pair value that the
			// plane cannot carry: re-derive boxed for alien fields.
			if c := cols.Col(e.rawIdx); c.HasAlien {
				return derive(c.Kind, cols.Value(a, e.rawIdx), cols.Value(b, e.rawIdx), e.kind)
			}
			return joblog.None()
		}
		return joblog.Num(x)
	}
	sym := d.DeriveSym(cols, a, b, derivedIdx)
	if sym == MissingSym {
		if c := cols.Col(e.rawIdx); c.HasAlien && e.kind == Base {
			return derive(c.Kind, cols.Value(a, e.rawIdx), cols.Value(b, e.rawIdx), e.kind)
		}
		return joblog.None()
	}
	return joblog.Str(d.SymString(cols.Intern(), derivedIdx, sym))
}

// SymString decodes a symbol of the derived feature's column back to the
// string the row engine would have produced.
func (d *Deriver) SymString(in *joblog.Intern, derivedIdx int, sym uint64) string {
	switch d.mapping[derivedIdx].kind {
	case IsSame:
		if sym == SymT {
			return "T"
		}
		return "F"
	case Compare:
		switch sym {
		case SymLT:
			return "LT"
		case SymGT:
			return "GT"
		default:
			return "SIM"
		}
	case Diff:
		return "(" + in.Str(uint32(sym>>32)) + "→" + in.Str(uint32(sym)) + ")"
	default: // Base (nominal)
		return in.Str(uint32(sym))
	}
}

// SymsForString returns the symbols of the derived feature's column that
// decode to s — the compile-time inverse of SymString. The result is
// empty when no pair value can ever render s (an equality against it can
// then only match via the not-equal operator). Diff constants may map to
// several symbols when the rendered string is ambiguous (a raw value
// containing the arrow); matching any of them is exactly string equality
// on the rendered form.
func (d *Deriver) SymsForString(in *joblog.Intern, derivedIdx int, s string) []uint64 {
	switch d.mapping[derivedIdx].kind {
	case IsSame:
		switch s {
		case "T":
			return []uint64{SymT}
		case "F":
			return []uint64{SymF}
		}
		return nil
	case Compare:
		switch s {
		case "LT":
			return []uint64{SymLT}
		case "SIM":
			return []uint64{SymSIM}
		case "GT":
			return []uint64{SymGT}
		}
		return nil
	case Diff:
		return diffSymsFor(in, s)
	default: // Base (nominal)
		if id, ok := in.Lookup(s); ok {
			return []uint64{uint64(id)}
		}
		return nil
	}
}

// diffSymsFor enumerates every (x, y) split of a "(x→y)" constant whose
// parts are both interned. "(va→vb)" == s holds for a pair exactly when
// (internID(va), internID(vb)) is in the returned set.
func diffSymsFor(in *joblog.Intern, s string) []uint64 {
	const arrow = "→"
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return nil
	}
	inner := s[1 : len(s)-1]
	var out []uint64
	for k := 0; k+len(arrow) <= len(inner); k++ {
		if inner[k:k+len(arrow)] != arrow {
			continue
		}
		x, okx := in.Lookup(inner[:k])
		y, oky := in.Lookup(inner[k+len(arrow):])
		if okx && oky {
			out = append(out, DiffSym(x, y))
		}
	}
	return out
}

// PairMatrix is a flat, row-major materialization of the derived feature
// vectors of a set of pairs: row i holds pair i's numeric plane
// (NumWidth() floats) and symbol plane (SymWidth() symbols). Rows are
// written by Fill and read by offset; no boxed values are created.
type PairMatrix struct {
	D    *Deriver
	N    int
	Num  []float64
	Sym  []uint64
	numW int
	symW int
}

// NewPairMatrix allocates a matrix for n pairs.
func (d *Deriver) NewPairMatrix(n int) *PairMatrix {
	return &PairMatrix{
		D:    d,
		N:    n,
		Num:  make([]float64, n*d.numW),
		Sym:  make([]uint64, n*d.symW),
		numW: d.numW,
		symW: d.symW,
	}
}

// NumAt reads the numeric plane at (row, NumOffset(feature)).
func (m *PairMatrix) NumAt(row, numOff int) float64 { return m.Num[row*m.numW+numOff] }

// SymAt reads the symbol plane at (row, SymOffset(feature)).
func (m *PairMatrix) SymAt(row, symOff int) uint64 { return m.Sym[row*m.symW+symOff] }

// NumStride returns the row stride of the numeric plane — the batched
// kernels walk a column incrementally instead of multiplying per row.
func (m *PairMatrix) NumStride() int { return m.numW }

// SymStride returns the row stride of the symbol plane.
func (m *PairMatrix) SymStride() int { return m.symW }

// Fill materializes the derived vector of the record pair (a, b) into
// row. It is safe to call concurrently for distinct rows.
func (m *PairMatrix) Fill(cols *joblog.Columns, row, a, b int) {
	m.D.MaterializeInto(cols, a, b, m.Num[row*m.numW:(row+1)*m.numW], m.Sym[row*m.symW:(row+1)*m.symW])
}

// MaterializeInto computes every derived feature of the pair (a, b) into
// the caller's plane rows (len NumWidth() and SymWidth() respectively).
// The loop is raw-field-major: each raw cell's missing bits and payloads
// are read once and fan out to the whole derived family, and the 10%
// similarity band is computed once for both issame and compare. This is
// the allocation-free bulk engine behind PairMatrix.Fill; callers may
// also reuse scratch rows directly.
func (d *Deriver) MaterializeInto(cols *joblog.Columns, a, b int, numRow []float64, symRow []uint64) {
	for pi := range d.rawPlans {
		p := &d.rawPlans[pi]
		c := cols.Col(p.rawIdx)
		if c.Miss.Get(a) || c.Miss.Get(b) {
			symRow[p.isSameOff] = MissingSym
			if p.compareOff >= 0 {
				symRow[p.compareOff] = MissingSym
				symRow[p.diffOff] = MissingSym
			}
			if p.baseNumOff >= 0 {
				numRow[p.baseNumOff] = math.NaN()
			} else if p.baseSymOff >= 0 {
				symRow[p.baseSymOff] = MissingSym
			}
			continue
		}
		if c.Kind == joblog.Numeric {
			na, nb := c.Num[a], c.Num[b]
			sim := stats.Similar(na, nb)
			if sim {
				symRow[p.isSameOff] = SymT
			} else {
				symRow[p.isSameOff] = SymF
			}
			if p.compareOff >= 0 {
				switch {
				case sim:
					symRow[p.compareOff] = SymSIM
				case na < nb:
					symRow[p.compareOff] = SymLT
				default:
					symRow[p.compareOff] = SymGT
				}
				symRow[p.diffOff] = MissingSym
			}
			if p.baseNumOff >= 0 {
				switch {
				case c.HasAlien && (c.Alien(a) || c.Alien(b)):
					numRow[p.baseNumOff] = d.DeriveNum(cols, a, b, p.baseIdx)
				case na == nb:
					numRow[p.baseNumOff] = na
				default:
					numRow[p.baseNumOff] = math.NaN()
				}
			}
			continue
		}
		sa, sb := c.Sym[a], c.Sym[b]
		if sa == sb {
			symRow[p.isSameOff] = SymT
		} else {
			symRow[p.isSameOff] = SymF
		}
		if p.compareOff >= 0 {
			symRow[p.compareOff] = MissingSym
			symRow[p.diffOff] = DiffSym(sa, sb)
		}
		if p.baseSymOff >= 0 {
			switch {
			case c.HasAlien && (c.Alien(a) || c.Alien(b)):
				symRow[p.baseSymOff] = d.DeriveSym(cols, a, b, p.baseIdx)
			case sa == sb:
				symRow[p.baseSymOff] = uint64(sa)
			default:
				symRow[p.baseSymOff] = MissingSym
			}
		}
	}
}
