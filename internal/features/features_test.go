package features

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perfxplain/internal/joblog"
)

func rawSchema() *joblog.Schema {
	return joblog.NewSchema([]joblog.Field{
		{Name: "pigscript", Kind: joblog.Nominal},
		{Name: "inputsize", Kind: joblog.Numeric},
		{Name: "duration", Kind: joblog.Numeric},
	})
}

func rec(id, script string, input, dur joblog.Value) *joblog.Record {
	return &joblog.Record{ID: id, Values: []joblog.Value{joblog.Str(script), input, dur}}
}

func TestNameRoundTrip(t *testing.T) {
	for _, kind := range []PairKind{IsSame, Compare, Diff, Base} {
		n := Name("inputsize", kind)
		raw, k := ParseName(n)
		if raw != "inputsize" || k != kind {
			t.Errorf("round trip %v: got %q, %v", kind, raw, k)
		}
	}
	if Name("f", Base) != "f" {
		t.Error("base features must keep the raw name")
	}
}

func TestDerivedSchemaShape(t *testing.T) {
	raw := rawSchema()
	for level, want := range map[Level]int{Level1: 3, Level2: 9, Level3: 12} {
		d := NewDeriver(raw, level)
		if got := d.Schema().Len(); got != want {
			t.Errorf("level %d: schema len = %d, want %d", level, got, want)
		}
	}
	d := NewDeriver(raw, Level3)
	// Table 1 ordering: isSame block first, then compare, diff, base.
	if d.Schema().Field(0).Name != "pigscript_issame" {
		t.Errorf("first derived field = %q", d.Schema().Field(0).Name)
	}
	if d.Schema().Field(11).Name != "duration" {
		t.Errorf("last derived field = %q", d.Schema().Field(11).Name)
	}
	if _, ok := d.Schema().Index("inputsize_compare"); !ok {
		t.Error("missing inputsize_compare")
	}
}

func TestDeriverPanics(t *testing.T) {
	bad := joblog.NewSchema([]joblog.Field{{Name: "x_issame", Kind: joblog.Nominal}})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("suffixed raw name did not panic")
			}
		}()
		NewDeriver(bad, Level3)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid level did not panic")
			}
		}()
		NewDeriver(rawSchema(), Level(0))
	}()
}

func TestDeriveValues(t *testing.T) {
	d := NewDeriver(rawSchema(), Level3)
	a := rec("a", "filter", joblog.Num(1000), joblog.Num(120))
	b := rec("b", "groupby", joblog.Num(2000), joblog.Num(125))

	tests := []struct {
		name string
		want joblog.Value
	}{
		{"pigscript_issame", ValF},
		{"inputsize_issame", ValF},
		{"duration_issame", ValT}, // 120 vs 125 is within 10%
		{"pigscript_compare", joblog.None()},
		{"inputsize_compare", ValLT},
		{"duration_compare", ValSIM},
		{"pigscript_diff", joblog.Str("(filter→groupby)")},
		{"inputsize_diff", joblog.None()},
		{"pigscript", joblog.None()}, // base missing: values differ
		{"inputsize", joblog.None()},
	}
	for _, tt := range tests {
		got, ok := d.ValueByName(a, b, tt.name)
		if !ok {
			t.Fatalf("feature %q not found", tt.name)
		}
		if got.IsMissing() != tt.want.IsMissing() || (!got.IsMissing() && !got.Equal(tt.want)) {
			t.Errorf("%s = %v, want %v", tt.name, got, tt.want)
		}
	}

	// Base features present when the values agree exactly.
	c := rec("c", "filter", joblog.Num(1000), joblog.Num(500))
	got, _ := d.ValueByName(a, c, "pigscript")
	if got != joblog.Str("filter") {
		t.Errorf("shared base pigscript = %v", got)
	}
	got, _ = d.ValueByName(a, c, "inputsize")
	if got != joblog.Num(1000) {
		t.Errorf("shared base inputsize = %v", got)
	}
	got, _ = d.ValueByName(a, c, "duration_compare")
	if got != ValLT {
		t.Errorf("duration_compare(120, 500) = %v, want LT", got)
	}
	got, _ = d.ValueByName(c, a, "duration_compare")
	if got != ValGT {
		t.Errorf("duration_compare(500, 120) = %v, want GT", got)
	}
}

func TestMissingPropagates(t *testing.T) {
	d := NewDeriver(rawSchema(), Level3)
	a := rec("a", "filter", joblog.None(), joblog.Num(120))
	b := rec("b", "filter", joblog.Num(100), joblog.Num(120))
	for _, name := range []string{"inputsize_issame", "inputsize_compare", "inputsize"} {
		got, _ := d.ValueByName(a, b, name)
		if !got.IsMissing() {
			t.Errorf("%s should be missing when a raw side is missing, got %v", name, got)
		}
	}
}

func TestValueByNameUnknown(t *testing.T) {
	d := NewDeriver(rawSchema(), Level1)
	if _, ok := d.ValueByName(rec("a", "x", joblog.Num(1), joblog.Num(1)),
		rec("b", "x", joblog.Num(1), joblog.Num(1)), "nope"); ok {
		t.Error("unknown feature should report !ok")
	}
}

func TestVectorMatchesLazyValue(t *testing.T) {
	d := NewDeriver(rawSchema(), Level3)
	a := rec("a", "filter", joblog.Num(1300), joblog.Num(300))
	b := rec("b", "filter", joblog.Num(2600), joblog.Num(310))
	vec := d.Vector(a, b)
	for i := range vec {
		lazy := d.Value(a, b, i)
		if vec[i].IsMissing() != lazy.IsMissing() || (!vec[i].IsMissing() && !vec[i].Equal(lazy)) {
			t.Errorf("feature %d: vector %v != lazy %v", i, vec[i], lazy)
		}
	}
	pr := d.PairRecord(a, b)
	if pr.ID != "a|b" || len(pr.Values) != d.Schema().Len() {
		t.Errorf("PairRecord = %q len %d", pr.ID, len(pr.Values))
	}
}

// Properties of the derivation, checked with random numeric pairs:
//   - isSame(a,b) is symmetric;
//   - compare(a,b) and compare(b,a) are mirror images;
//   - isSame = T exactly when compare = SIM (for numerics).
func TestDerivedSymmetryProperties(t *testing.T) {
	d := NewDeriver(rawSchema(), Level3)
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		x, y := rng.Float64()*1e6, rng.Float64()*1e6
		a := rec("a", "s", joblog.Num(x), joblog.Num(1))
		b := rec("b", "s", joblog.Num(y), joblog.Num(1))
		same1, _ := d.ValueByName(a, b, "inputsize_issame")
		same2, _ := d.ValueByName(b, a, "inputsize_issame")
		cmp1, _ := d.ValueByName(a, b, "inputsize_compare")
		cmp2, _ := d.ValueByName(b, a, "inputsize_compare")
		if same1 != same2 {
			return false
		}
		mirror := map[joblog.Value]joblog.Value{ValLT: ValGT, ValGT: ValLT, ValSIM: ValSIM}
		if cmp2 != mirror[cmp1] {
			return false
		}
		return (same1 == ValT) == (cmp1 == ValSIM)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRawOf(t *testing.T) {
	d := NewDeriver(rawSchema(), Level3)
	idx := d.Schema().MustIndex("inputsize_compare")
	rawIdx, kind := d.RawOf(idx)
	if d.RawSchema().Field(rawIdx).Name != "inputsize" || kind != Compare {
		t.Errorf("RawOf = %d, %v", rawIdx, kind)
	}
	if d.Level() != Level3 {
		t.Errorf("Level = %v", d.Level())
	}
}
