package features

// Equivalence tests for the columnar derivation paths: on randomized
// logs — including missing and kind-mismatched (alien) cells — ValueCol
// and MaterializeInto must reproduce the boxed Value/Vector engine
// exactly, and the symbol codecs must round-trip.

import (
	"math"
	"testing"

	"perfxplain/internal/joblog"
	"perfxplain/internal/stats"
)

func randLog(seed uint64, n int) *joblog.Log {
	schema := joblog.NewSchema([]joblog.Field{
		{Name: "n1", Kind: joblog.Numeric},
		{Name: "n2", Kind: joblog.Numeric},
		{Name: "s1", Kind: joblog.Nominal},
		{Name: "s2", Kind: joblog.Nominal},
	})
	nums := []float64{0, 1, 1.05, -3, 100, math.Inf(-1)}
	strs := []string{"x", "y", "a→b", "(x→y)", ""}
	log := joblog.NewLog(schema)
	ctr := seed
	next := func() uint64 {
		ctr++
		return stats.SplitMix64(ctr)
	}
	for i := 0; i < n; i++ {
		rec := &joblog.Record{ID: string(rune('a' + i)), Values: make([]joblog.Value, schema.Len())}
		for f := 0; f < schema.Len(); f++ {
			r := next()
			numeric := schema.Field(f).Kind == joblog.Numeric
			switch r % 8 {
			case 0:
				rec.Values[f] = joblog.None()
			case 1: // alien
				numeric = !numeric
				fallthrough
			default:
				if numeric {
					rec.Values[f] = joblog.Num(nums[int(r>>8)%len(nums)])
				} else {
					rec.Values[f] = joblog.Str(strs[int(r>>8)%len(strs)])
				}
			}
		}
		log.MustAppend(rec)
	}
	return log
}

func TestColumnarDeriveMatchesBoxed(t *testing.T) {
	for _, level := range []Level{Level1, Level2, Level3} {
		for seed := uint64(0); seed < 20; seed++ {
			log := randLog(seed, 6)
			d := NewDeriver(log.Schema, level)
			cols := log.Columns()
			numRow := make([]float64, d.NumWidth())
			symRow := make([]uint64, d.SymWidth())
			for a := range log.Records {
				for b := range log.Records {
					ra, rb := log.Records[a], log.Records[b]
					want := d.Vector(ra, rb)
					d.MaterializeInto(cols, a, b, numRow, symRow)
					for i := 0; i < d.Schema().Len(); i++ {
						// ValueCol must equal the boxed derive exactly.
						got := d.ValueCol(cols, a, b, i)
						if !valueIdentical(got, want[i]) {
							t.Fatalf("L%d seed %d: ValueCol(%d,%d,%s) = %v, want %v",
								level, seed, a, b, d.Schema().Field(i).Name, got, want[i])
						}
						// The materialized planes must agree with the boxed
						// vector under the plane encodings (alien-pair base
						// values legitimately materialize as missing).
						checkPlaneCell(t, d, cols, i, numRow, symRow, want[i], a, b)
					}
				}
			}
		}
	}
}

// valueIdentical is struct equality except NaN == NaN for numerics.
func valueIdentical(a, b joblog.Value) bool {
	if a.Kind != b.Kind || a.Str != b.Str {
		return false
	}
	if a.Num != b.Num && !(math.IsNaN(a.Num) && math.IsNaN(b.Num)) {
		return false
	}
	return true
}

func checkPlaneCell(t *testing.T, d *Deriver, cols *joblog.Columns, i int,
	numRow []float64, symRow []uint64, want joblog.Value, a, b int) {
	t.Helper()
	rawIdx, kind := d.RawOf(i)
	alienPair := cols.Col(rawIdx).Alien(a) || cols.Col(rawIdx).Alien(b)
	if off := d.NumOffset(i); off >= 0 {
		got := numRow[off]
		switch {
		case want.Kind == joblog.Numeric:
			if got != want.Num && !(math.IsNaN(got) && math.IsNaN(want.Num)) {
				t.Fatalf("num plane %s = %v, want %v", d.Schema().Field(i).Name, got, want.Num)
			}
		case want.IsMissing() || (kind == Base && alienPair):
			if !math.IsNaN(got) {
				t.Fatalf("num plane %s = %v, want NaN", d.Schema().Field(i).Name, got)
			}
		default:
			t.Fatalf("unexpected boxed value %v in numeric plane", want)
		}
		return
	}
	got := symRow[d.SymOffset(i)]
	switch {
	case want.Kind == joblog.Nominal:
		if got == MissingSym || d.SymString(cols.Intern(), i, got) != want.Str {
			t.Fatalf("sym plane %s = %#x, want %q", d.Schema().Field(i).Name, got, want.Str)
		}
	case want.IsMissing() || (kind == Base && alienPair):
		if got != MissingSym {
			t.Fatalf("sym plane %s = %#x, want missing", d.Schema().Field(i).Name, got)
		}
	default:
		t.Fatalf("unexpected boxed value %v in symbol plane", want)
	}
}

func TestSymCodecRoundTrip(t *testing.T) {
	log := randLog(3, 6)
	d := NewDeriver(log.Schema, Level3)
	cols := log.Columns()
	in := cols.Intern()
	for i := 0; i < d.Schema().Len(); i++ {
		if d.SymOffset(i) < 0 {
			continue
		}
		for a := range log.Records {
			for b := range log.Records {
				sym := d.DeriveSym(cols, a, b, i)
				if sym == MissingSym {
					continue
				}
				s := d.SymString(in, i, sym)
				back := d.SymsForString(in, i, s)
				found := false
				for _, bs := range back {
					if bs == sym {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: sym %#x renders %q whose syms %v do not include it",
						d.Schema().Field(i).Name, sym, s, back)
				}
			}
		}
	}
}
