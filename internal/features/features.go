// Package features computes the derived pair features of paper Table 1.
//
// PerfXplain learns from pairs of executions. A pair over a raw schema with
// k features is represented by up to 4·k derived features spanning general
// to specific:
//
//   - f_issame ∈ {T, F}: whether the two executions agree on f. For nominal
//     raws this is exact equality; for numeric raws we use the paper's 10%
//     similarity band, since exact float equality would make the feature
//     degenerate for continuous metrics (the paper's own explanations, e.g.
//     avg_cpu_user isSame = F, only make sense under a tolerance).
//   - f_compare ∈ {LT, SIM, GT}: numeric raws only; whether the first
//     execution's value is much less than, similar to (within 10%), or much
//     greater than the second's. Missing for nominal raws.
//   - f_diff = "(v1→v2)": nominal raws only; the change in value. Missing
//     for numeric raws.
//   - f (base): the shared value, present only when the two executions
//     agree exactly; missing otherwise.
//
// Missing raw values propagate: every derived feature of a pair is missing
// if either side's raw value is missing.
package features

import (
	"fmt"
	"strings"

	"perfxplain/internal/joblog"
	"perfxplain/internal/stats"
)

// Level selects how much of the derived feature hierarchy is exposed,
// matching the three feature sets of paper Section 6.8.
type Level int

const (
	// Level1 exposes only the isSame features.
	Level1 Level = 1
	// Level2 adds the compare and diff features.
	Level2 Level = 2
	// Level3 adds the base features; this is the full Table 1 set and the
	// default everywhere.
	Level3 Level = 3
)

// PairKind identifies which of the four derived families a feature is in.
type PairKind int

const (
	IsSame PairKind = iota
	Compare
	Diff
	Base
)

// String returns the family name as used in feature suffixes.
func (k PairKind) String() string {
	switch k {
	case IsSame:
		return "issame"
	case Compare:
		return "compare"
	case Diff:
		return "diff"
	case Base:
		return "base"
	default:
		return fmt.Sprintf("PairKind(%d)", int(k))
	}
}

// Derived feature values for the nominal code domains.
var (
	ValT   = joblog.Str("T")
	ValF   = joblog.Str("F")
	ValLT  = joblog.Str("LT")
	ValSIM = joblog.Str("SIM")
	ValGT  = joblog.Str("GT")
)

// Name returns the derived feature name for a raw feature and family.
// Base features keep the raw name, so user-facing predicates read exactly
// like the paper's (`blocksize >= 128MB`, `inputsize_compare = GT`).
func Name(raw string, kind PairKind) string {
	if kind == Base {
		return raw
	}
	return raw + "_" + kind.String()
}

// ParseName splits a derived feature name into its raw feature and family.
// Unsuffixed names are base features.
func ParseName(name string) (raw string, kind PairKind) {
	if r, ok := strings.CutSuffix(name, "_issame"); ok {
		return r, IsSame
	}
	if r, ok := strings.CutSuffix(name, "_compare"); ok {
		return r, Compare
	}
	if r, ok := strings.CutSuffix(name, "_diff"); ok {
		return r, Diff
	}
	return name, Base
}

// Deriver derives pair feature vectors for a fixed raw schema and level.
// It precomputes the derived schema (ordered as Table 1: isSame block,
// compare block, diff block, base block) and a per-derived-feature mapping
// back to the raw field.
type Deriver struct {
	raw     *joblog.Schema
	level   Level
	derived *joblog.Schema
	mapping []mapEntry // parallel to derived schema

	// Plane layout for the columnar engine (see columns.go): per derived
	// feature, its offset in the numeric or symbol plane of a PairMatrix,
	// plus the raw-field-major materialization plan.
	numOff   []int
	symOff   []int
	numW     int
	symW     int
	rawPlans []rawPlan
}

type mapEntry struct {
	rawIdx int
	kind   PairKind
}

// NewDeriver builds a deriver. It panics if a raw feature name already
// carries a derived suffix, since that would make names ambiguous.
func NewDeriver(raw *joblog.Schema, level Level) *Deriver {
	if level < Level1 || level > Level3 {
		panic(fmt.Sprintf("features: invalid level %d", level))
	}
	for _, f := range raw.Fields() {
		if r, k := ParseName(f.Name); k != Base || r != f.Name {
			panic(fmt.Sprintf("features: raw feature %q collides with derived naming", f.Name))
		}
	}
	d := &Deriver{raw: raw, level: level}
	var fields []joblog.Field
	add := func(rawIdx int, kind PairKind, fieldKind joblog.Kind) {
		fields = append(fields, joblog.Field{
			Name: Name(raw.Field(rawIdx).Name, kind),
			Kind: fieldKind,
		})
		d.mapping = append(d.mapping, mapEntry{rawIdx: rawIdx, kind: kind})
	}
	for i := 0; i < raw.Len(); i++ {
		add(i, IsSame, joblog.Nominal)
	}
	if level >= Level2 {
		for i := 0; i < raw.Len(); i++ {
			add(i, Compare, joblog.Nominal)
		}
		for i := 0; i < raw.Len(); i++ {
			add(i, Diff, joblog.Nominal)
		}
	}
	if level >= Level3 {
		for i := 0; i < raw.Len(); i++ {
			add(i, Base, raw.Field(i).Kind)
		}
	}
	d.derived = joblog.NewSchema(fields)
	d.buildPlanes()
	return d
}

// RawSchema returns the underlying raw schema.
func (d *Deriver) RawSchema() *joblog.Schema { return d.raw }

// Schema returns the derived pair schema.
func (d *Deriver) Schema() *joblog.Schema { return d.derived }

// Level returns the deriver's feature level.
func (d *Deriver) Level() Level { return d.level }

// RawOf returns the raw field index and family of the i'th derived feature.
func (d *Deriver) RawOf(i int) (rawIdx int, kind PairKind) {
	e := d.mapping[i]
	return e.rawIdx, e.kind
}

// Value computes a single derived feature of the pair (a, b) without
// materialising the whole vector. This is what predicate evaluation uses
// when scanning large pair spaces.
func (d *Deriver) Value(a, b *joblog.Record, derivedIdx int) joblog.Value {
	e := d.mapping[derivedIdx]
	return derive(d.raw.Field(e.rawIdx).Kind, a.Values[e.rawIdx], b.Values[e.rawIdx], e.kind)
}

// ValueByName is Value addressed by derived feature name. ok is false when
// the name is not in the derived schema.
func (d *Deriver) ValueByName(a, b *joblog.Record, name string) (joblog.Value, bool) {
	i, ok := d.derived.Index(name)
	if !ok {
		return joblog.None(), false
	}
	return d.Value(a, b, i), true
}

// Vector materialises the full derived feature vector for the pair (a, b),
// in derived-schema order.
func (d *Deriver) Vector(a, b *joblog.Record) []joblog.Value {
	out := make([]joblog.Value, len(d.mapping))
	for i, e := range d.mapping {
		out[i] = derive(d.raw.Field(e.rawIdx).Kind, a.Values[e.rawIdx], b.Values[e.rawIdx], e.kind)
	}
	return out
}

// PairRecord wraps Vector in a joblog.Record whose ID is "idA|idB".
func (d *Deriver) PairRecord(a, b *joblog.Record) *joblog.Record {
	return &joblog.Record{ID: a.ID + "|" + b.ID, Values: d.Vector(a, b)}
}

// derive computes one derived value from the two raw values.
func derive(rawKind joblog.Kind, va, vb joblog.Value, kind PairKind) joblog.Value {
	if va.IsMissing() || vb.IsMissing() {
		return joblog.None()
	}
	switch kind {
	case IsSame:
		if rawKind == joblog.Numeric {
			return boolVal(stats.Similar(va.Num, vb.Num))
		}
		return boolVal(va.Str == vb.Str)
	case Compare:
		if rawKind != joblog.Numeric {
			return joblog.None()
		}
		switch {
		case stats.Similar(va.Num, vb.Num):
			return ValSIM
		case va.Num < vb.Num:
			return ValLT
		default:
			return ValGT
		}
	case Diff:
		if rawKind != joblog.Nominal {
			return joblog.None()
		}
		return joblog.Str("(" + va.Str + "→" + vb.Str + ")")
	case Base:
		if va.Equal(vb) {
			return va
		}
		return joblog.None()
	default:
		panic(fmt.Sprintf("features: bad kind %v", kind))
	}
}

func boolVal(b bool) joblog.Value {
	if b {
		return ValT
	}
	return ValF
}
