package perfxplain

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, each regenerating its artifact from a fresh
// simulated Table 2 log and reporting the headline quantities as custom
// benchmark metrics, plus ablation benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Reported metrics are probabilities (precision/relevance/generality), so
// e.g. `px_prec_w3` is PerfXplain's mean width-3 precision on the
// held-out log.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"perfxplain/internal/collect"
	"perfxplain/internal/core"
	"perfxplain/internal/eval"
	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/stats"
)

// benchLogs collects the full Table 2 sweep once for all benchmarks.
var (
	benchOnce sync.Once
	benchRes  *collect.Result
	benchErr  error
)

func benchHarness(b *testing.B, reps int) *eval.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchRes, benchErr = collect.DefaultSweep(42).Collect()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	h := eval.NewHarness(benchRes.Jobs, benchRes.Tasks, 7)
	h.Reps = reps
	return h
}

func reportSeries(b *testing.B, tab *eval.Table, metricFor func(seriesName string) string, atX float64) {
	for _, s := range tab.Series {
		name := metricFor(s.Name)
		if name == "" {
			continue
		}
		for i, x := range s.X {
			if x == atX {
				b.ReportMetric(s.Mean[i], name)
			}
		}
	}
}

func techMetric(prefix string) func(string) string {
	return func(series string) string {
		switch series {
		case eval.TechPerfXplain:
			return "px_" + prefix
		case eval.TechRuleOfThumb:
			return "rot_" + prefix
		case eval.TechSimButDiff:
			return "sbd_" + prefix
		}
		return ""
	}
}

// BenchmarkFig3aWhyLastTaskFaster regenerates Figure 3(a): precision vs
// width for the task-level query, three techniques.
func BenchmarkFig3aWhyLastTaskFaster(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.PrecisionVsWidth(eval.WhyLastTaskFaster(), []int{0, 1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, tab, techMetric("prec_w3"), 3)
		}
	}
}

// BenchmarkFig3bWhySlower regenerates Figure 3(b): precision vs width for
// the job-level query. The paper's headline: PerfXplain at width 3 beats
// both baselines by at least 40.5%.
func BenchmarkFig3bWhySlower(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.PrecisionVsWidth(eval.WhySlowerDespiteSameNumInstances(), []int{0, 1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, tab, techMetric("prec_w3"), 3)
		}
	}
}

// BenchmarkFig3cDifferentJob regenerates Figure 3(c): training on
// simple-groupby jobs only, evaluating on simple-filter jobs.
func BenchmarkFig3cDifferentJob(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.DifferentJobLog([]int{0, 1, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, tab, techMetric("prec_w3"), 3)
		}
	}
}

// BenchmarkFig3dLogSize regenerates Figure 3(d): width-3 precision vs
// training-log fraction.
func BenchmarkFig3dLogSize(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.LogSizeSweep([]float64{0.1, 0.3, 0.5}, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, tab, techMetric("prec_f10"), 0.1)
		}
	}
}

// BenchmarkFig4aDespiteRelevance regenerates Figure 4(a): relevance of
// generated despite clauses vs width for both queries.
func BenchmarkFig4aDespiteRelevance(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.DespiteRelevance([]int{0, 1, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range tab.Series {
				for j, x := range s.X {
					if x == 3 {
						b.ReportMetric(s.Mean[j], "rel_w3_"+shortQuery(s.Name))
					}
				}
			}
		}
	}
}

func shortQuery(name string) string {
	if strings.HasPrefix(name, "WhyLastTaskFaster") {
		return "q1"
	}
	return "q2"
}

// BenchmarkFig4bPrecGen regenerates Figure 4(b): the precision/generality
// trade-off points per technique.
func BenchmarkFig4bPrecGen(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.PrecisionGenerality([]int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range tab.Series {
				if len(s.Mean) == 0 {
					continue
				}
				last := len(s.Mean) - 1
				m := techMetric("prec_w5")(s.Name)
				g := techMetric("gen_w5")(s.Name)
				if m != "" {
					b.ReportMetric(s.Mean[last], m)
					b.ReportMetric(s.X[last], g)
				}
			}
		}
	}
}

// BenchmarkFig4cFeatureLevels regenerates Figure 4(c): precision at
// feature levels 1-3.
func BenchmarkFig4cFeatureLevels(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.FeatureLevels([]int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range tab.Series {
				for j, x := range s.X {
					if x == 3 {
						b.ReportMetric(s.Mean[j], "prec_w3_"+s.Name)
					}
				}
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3: relevance with empty vs generated
// despite clauses for both queries.
func BenchmarkTable3(b *testing.B) {
	h := benchHarness(b, 3)
	for i := 0; i < b.N; i++ {
		tab, err := h.Table3(3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range tab.Series {
				for j, x := range s.X {
					b.ReportMetric(s.Mean[j], fmt.Sprintf("%s_q%d", seriesShort(s.Name), int(x)))
				}
			}
		}
	}
}

func seriesShort(name string) string {
	if name == "RelevanceBefore" {
		return "rel_before"
	}
	return "rel_after"
}

// --- Ablation benchmarks (DESIGN.md Section 5) -------------------------

// ablationPrecision runs PerfXplain on the WhySlower query under a
// modified core configuration and returns mean width-3 held-out
// precision over a few splits.
func ablationPrecision(b *testing.B, mutate func(*core.Config)) float64 {
	b.Helper()
	benchHarness(b, 3) // ensures benchRes is populated
	t := eval.WhySlowerDespiteSameNumInstances()
	var precs []float64
	for rep := int64(0); rep < 3; rep++ {
		rng := stats.DeriveRand(900+rep, "ablation")
		jobs := benchRes.Jobs
		trainIDs := make(map[string]bool)
		for _, id := range recordIDs(jobs) {
			if rng.Float64() < 0.5 {
				trainIDs[id] = true
			}
		}
		train := jobs.Filter(func(r *joblog.Record) bool { return trainIDs[r.ID] })
		test := jobs.Filter(func(r *joblog.Record) bool { return !trainIDs[r.ID] })
		q, err := t.Query()
		if err != nil {
			b.Fatal(err)
		}
		pairs := core.RelatedPairs(train, features.Level3, q, 50000, rep)
		bound := false
		for _, p := range pairs {
			if p.Observed {
				q.ID1, q.ID2 = p.A.ID, p.B.ID
				bound = true
				break
			}
		}
		if !bound {
			continue
		}
		cfg := core.Config{Width: 3, Seed: rep, MaxPairs: 50000}
		mutate(&cfg)
		ex, err := core.NewExplainer(train, cfg)
		if err != nil {
			b.Fatal(err)
		}
		x, err := ex.Explain(q)
		if err != nil {
			continue
		}
		m, err := core.EvaluateExplanation(test, features.Level3, q, x, 50000, rep)
		if err != nil {
			continue
		}
		precs = append(precs, m.Precision)
	}
	return stats.Mean(precs)
}

func recordIDs(l *joblog.Log) []string {
	out := make([]string, 0, l.Len())
	for _, r := range l.Records {
		out = append(out, r.ID)
	}
	return out
}

// BenchmarkAblationRawScores compares the paper's percentile-rank score
// normalisation (Section 4.2) against raw precision/generality blending.
func BenchmarkAblationRawScores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		normalized := ablationPrecision(b, func(c *core.Config) {})
		raw := ablationPrecision(b, func(c *core.Config) { c.RawScores = true })
		if i == b.N-1 {
			b.ReportMetric(normalized, "prec_normalized")
			b.ReportMetric(raw, "prec_rawscores")
		}
	}
}

// BenchmarkAblationUnbalanced compares the paper's class-balanced sampler
// (Section 4.3) against uniform sampling.
func BenchmarkAblationUnbalanced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		balanced := ablationPrecision(b, func(c *core.Config) {})
		uniform := ablationPrecision(b, func(c *core.Config) { c.UnbalancedSample = true })
		if i == b.N-1 {
			b.ReportMetric(balanced, "prec_balanced")
			b.ReportMetric(uniform, "prec_uniform")
		}
	}
}

// BenchmarkExplainLatency measures raw explanation-generation latency on
// the full 540-job log — the interactive-use cost the paper's sampling
// bounds (Section 4.3).
func BenchmarkExplainLatency(b *testing.B) {
	benchHarness(b, 3)
	t := eval.WhySlowerDespiteSameNumInstances()
	q, err := t.Query()
	if err != nil {
		b.Fatal(err)
	}
	pairs := core.RelatedPairs(benchRes.Jobs, features.Level3, q, 50000, 1)
	for _, p := range pairs {
		if p.Observed {
			q.ID1, q.ID2 = p.A.ID, p.B.ID
			break
		}
	}
	ex, err := core.NewExplainer(benchRes.Jobs, core.Config{Width: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelismAblation tracks the serial-vs-parallel speedup of
// the explanation pipeline: the same workload at Parallelism 1, 2, 4 and
// GOMAXPROCS. Output is byte-identical across the variants (asserted by
// the determinism tests), so any delta is pure throughput. Two scopes:
// "explain" is a single end-to-end core explanation on the full 540-job
// log; "table3" is the harness regenerating Table 3 (reps, despite
// generation and held-out evaluation all on the worker pool).
func BenchmarkParallelismAblation(b *testing.B) {
	benchHarness(b, 3)
	t := eval.WhySlowerDespiteSameNumInstances()
	q, err := t.Query()
	if err != nil {
		b.Fatal(err)
	}
	pairs := core.RelatedPairs(benchRes.Jobs, features.Level3, q, 50000, 1)
	for _, p := range pairs {
		if p.Observed {
			q.ID1, q.ID2 = p.A.ID, p.B.ID
			break
		}
	}
	levels := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, p := range levels {
		b.Run(fmt.Sprintf("explain/p%d", p), func(b *testing.B) {
			ex, err := core.NewExplainer(benchRes.Jobs, core.Config{Width: 3, Seed: 1, Parallelism: p})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := ex.Explain(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, p := range levels {
		b.Run(fmt.Sprintf("table3/p%d", p), func(b *testing.B) {
			h := benchHarness(b, 3)
			h.Parallelism = p
			for i := 0; i < b.N; i++ {
				if _, err := h.Table3(3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectSweep measures the substrate: simulating and logging
// the full 540-job Table 2 sweep.
func BenchmarkCollectSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := collect.DefaultSweep(int64(i)).Collect(); err != nil {
			b.Fatal(err)
		}
	}
}
