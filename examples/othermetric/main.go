// OtherMetric: the paper's conclusion notes the approach "can readily be
// applied to other performance metrics". This example explains a
// *data-volume* anomaly instead of a runtime one: why did one job write
// far more HDFS bytes than another?
//
//	go run ./examples/othermetric
package main

import (
	"fmt"
	"log"

	"perfxplain"
)

func main() {
	jobs, _, err := perfxplain.Collect(perfxplain.SweepOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Observed: J1 wrote much more to HDFS than J2. Expected: similar.
	q, err := perfxplain.NewTargetQuery("hdfs_bytes_written", "GT", "SIM")
	if err != nil {
		log.Fatal(err)
	}
	id1, id2, ok := perfxplain.FindPairOfInterest(jobs, q, 13)
	if !ok {
		log.Fatal("no pair of interest")
	}
	q.Bind(id1, id2)
	w1, _ := jobs.Feature(id1, "hdfs_bytes_written")
	w2, _ := jobs.Feature(id2, "hdfs_bytes_written")
	s1, _ := jobs.Feature(id1, "pigscript")
	s2, _ := jobs.Feature(id2, "pigscript")
	fmt.Printf("pair of interest:\n  %s (%s) wrote %s bytes\n  %s (%s) wrote %s bytes\n\n",
		id1, s1, w1, id2, s2, w2)

	// Target switches the explained metric; its derived features are
	// excluded from clauses so the explanation cannot be circular.
	ex, err := perfxplain.NewExplainer(jobs, perfxplain.Options{
		Width:  3,
		Seed:   13,
		Target: "hdfs_bytes_written",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	x, err := ex.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PerfXplain says:")
	fmt.Println(x)
	fmt.Printf("\n(training precision %.2f)\n", x.TrainPrecision())
}
