// WhySlower: the paper's job-level benchmark query
// (WhySlowerDespiteSameNumInstances, Section 6.2) run against the full
// Table 2 log, comparing all three explanation techniques on a held-out
// log — a miniature of Figure 3(b).
//
//	go run ./examples/whyslower
package main

import (
	"fmt"
	"log"

	"perfxplain"
)

func main() {
	// Two independent sweeps: one to learn from, one to judge on.
	train, _, err := perfxplain.Collect(perfxplain.SweepOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	test, _, err := perfxplain.Collect(perfxplain.SweepOptions{Seed: 43})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train log: %d jobs, held-out log: %d jobs\n\n", train.Len(), test.Len())

	q, err := perfxplain.ParseQuery(`
		DESPITE numinstances_issame = T AND pigscript_issame = T
		OBSERVED duration_compare = GT
		EXPECTED duration_compare = SIM`)
	if err != nil {
		log.Fatal(err)
	}
	id1, id2, ok := perfxplain.FindPairOfInterest(train, q, 7)
	if !ok {
		log.Fatal("no pair of interest")
	}
	q.Bind(id1, id2)
	fmt.Printf("pair of interest: %s vs %s\n", id1, id2)
	in1, _ := train.Feature(id1, "inputsize")
	in2, _ := train.Feature(id2, "inputsize")
	d1, _ := train.Feature(id1, "duration")
	d2, _ := train.Feature(id2, "duration")
	fmt.Printf("  %s: input %s bytes, duration %ss\n", id1, in1, d1)
	fmt.Printf("  %s: input %s bytes, duration %ss\n\n", id2, in2, d2)

	ex, err := perfxplain.NewExplainer(train, perfxplain.Options{Width: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	px, err := ex.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	rot, err := perfxplain.RuleOfThumbExplain(train, q, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	sbd, err := perfxplain.SimButDiffExplain(train, q, 3, 7)
	if err != nil {
		log.Fatal(err)
	}

	for _, entry := range []struct {
		name string
		x    *perfxplain.Explanation
	}{
		{"PerfXplain", px},
		{"RuleOfThumb", rot},
		{"SimButDiff", sbd},
	} {
		m, err := perfxplain.Evaluate(test, q, entry.x, perfxplain.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s BECAUSE %s\n", entry.name, entry.x.Because())
		fmt.Printf("             held-out precision %.3f, generality %.3f\n\n",
			m.Precision, m.Generality)
	}
}
