// WhyLastTaskFaster: the paper's task-level benchmark query (Section
// 6.2, query 1) — the authors' own puzzle while collecting their data:
// why does the last task on an instance run faster than the earlier
// tasks on the same instance, even though every task processes a similar
// amount of data?
//
//	go run ./examples/whylasttaskfaster
package main

import (
	"fmt"
	"log"

	"perfxplain"
)

func main() {
	_, tasks, err := perfxplain.Collect(perfxplain.SweepOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task log: %d task executions\n\n", tasks.Len())

	q, err := perfxplain.ParseQuery(`
		DESPITE jobid_issame = T AND inputsize_compare = SIM AND hostname_issame = T
		OBSERVED duration_compare = LT
		EXPECTED duration_compare = SIM`)
	if err != nil {
		log.Fatal(err)
	}
	id1, id2, ok := perfxplain.FindPairOfInterest(tasks, q, 3)
	if !ok {
		log.Fatal("no pair of interest")
	}
	q.Bind(id1, id2)
	fmt.Printf("pair of interest: task %s (fast) vs %s on the same instance\n", id1, id2)
	cpu1, _ := tasks.Feature(id1, "avg_cpu_user")
	cpu2, _ := tasks.Feature(id2, "avg_cpu_user")
	d1, _ := tasks.Feature(id1, "duration")
	d2, _ := tasks.Feature(id2, "duration")
	fmt.Printf("  %s: duration %ss, avg cpu_user %s%%\n", id1, d1, cpu1)
	fmt.Printf("  %s: duration %ss, avg cpu_user %s%%\n\n", id2, d2, cpu2)

	ex, err := perfxplain.NewExplainer(tasks, perfxplain.Options{Width: 3, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	x, err := ex.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PerfXplain says:")
	fmt.Println(x)
	fmt.Println("\nThe paper's reading: the task ran when the machine was less" +
		"\nloaded (fewer concurrent tasks / lower CPU utilisation) — here the" +
		"\nclause points at the same monitoring features.")
}
