// DespiteGen: PerfXplain's answer to an under-specified query (paper
// Section 6.4). The user asks why a job was slower but gives no despite
// clause; PerfXplain generates one, raising the query's relevance before
// explaining.
//
//	go run ./examples/despitegen
package main

import (
	"fmt"
	"log"

	"perfxplain"
)

func main() {
	jobs, _, err := perfxplain.Collect(perfxplain.SweepOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// No DESPITE clause: the user only states what surprised them.
	q, err := perfxplain.ParseQuery(`
		OBSERVED duration_compare = GT
		EXPECTED duration_compare = SIM`)
	if err != nil {
		log.Fatal(err)
	}
	id1, id2, ok := perfxplain.FindPairOfInterest(jobs, q, 11)
	if !ok {
		log.Fatal("no pair of interest")
	}
	q.Bind(id1, id2)

	ex, err := perfxplain.NewExplainer(jobs, perfxplain.Options{Width: 3, DespiteWidth: 3, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()

	// Relevance of the raw query: how likely is the expected behaviour
	// given no context at all?
	empty, err := ex.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relevance with empty despite clause:     %.2f\n", empty.TrainRelevance())

	// Let PerfXplain build the despite clause, then explain within it.
	x, err := ex.ExplainWithDespite(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relevance with generated despite clause: %.2f\n\n", x.TrainRelevance())
	fmt.Println("full explanation:")
	fmt.Println(x)
}
