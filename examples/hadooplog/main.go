// HadoopLog: adopt PerfXplain over a directory of Hadoop-style job
// history files. The first half of this example plays the role of the
// outside world — a cluster writing history files (here produced by the
// simulator, exactly what `pxqlcollect -history` emits). The second half
// is the consumer side, pure public API: parse the files into an
// execution log and answer a query over it.
//
//	go run ./examples/hadooplog
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"perfxplain"
	"perfxplain/internal/collect"
	"perfxplain/internal/hadooplog"
)

func main() {
	// --- The outside world: a cluster producing history files. ---------
	res, err := collect.SmallSweep(42).Collect()
	if err != nil {
		log.Fatal(err)
	}
	var files []io.Reader
	for _, job := range res.Results {
		var buf bytes.Buffer
		if err := hadooplog.WriteJob(&buf, job); err != nil {
			log.Fatal(err)
		}
		files = append(files, &buf)
	}
	fmt.Printf("parsed %d Hadoop-style history files\n", len(files))

	// --- The consumer: public API from here on. ------------------------
	jobs, tasks, err := perfxplain.LogsFromHistory(files...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed logs: %d jobs, %d tasks\n", jobs.Len(), tasks.Len())
	fmt.Println("note: history files carry no Ganglia metrics, so those " +
		"features are missing —\nPerfXplain handles missing features natively.")
	fmt.Println()

	q, err := perfxplain.ParseQuery(`
		DESPITE numinstances_issame = T AND pigscript_issame = T
		OBSERVED duration_compare = GT
		EXPECTED duration_compare = SIM`)
	if err != nil {
		log.Fatal(err)
	}
	id1, id2, ok := perfxplain.FindPairOfInterest(jobs, q, 5)
	if !ok {
		log.Fatal("no pair of interest")
	}
	q.Bind(id1, id2)

	ex, err := perfxplain.NewExplainer(jobs, perfxplain.Options{Width: 3, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	x, err := ex.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query over %s vs %s:\n%s\n", id1, id2, x)
}
