// Quickstart: collect a small simulated execution log, ask why one job
// was slower than another, and print PerfXplain's explanation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"perfxplain"
)

func main() {
	// Collect a small log of simulated MapReduce executions (32 jobs over
	// the reduced parameter grid). In a real deployment this log would
	// come from your cluster's history via perfxplain.LogsFromHistory or
	// perfxplain.ReadLogCSV.
	jobs, _, err := perfxplain.Collect(perfxplain.SweepOptions{Small: true, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected a log of %d job executions\n\n", jobs.Len())

	// The paper's motivating question: despite running the same script on
	// the same number of instances, one job was much slower than another.
	// I expected similar durations. Why?
	q, err := perfxplain.ParseQuery(`
		DESPITE numinstances_issame = T AND pigscript_issame = T
		OBSERVED duration_compare = GT
		EXPECTED duration_compare = SIM`)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a concrete pair of jobs exhibiting the observed behaviour.
	id1, id2, ok := perfxplain.FindPairOfInterest(jobs, q, 1)
	if !ok {
		log.Fatal("no pair of jobs in the log matches the query")
	}
	q.Bind(id1, id2)
	fmt.Printf("asking about jobs %s (slow) and %s (fast):\n%s\n\n", id1, id2, q)

	ex, err := perfxplain.NewExplainer(jobs, perfxplain.Options{Width: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	x, err := ex.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PerfXplain says:")
	fmt.Println(x)
	fmt.Printf("\n(training precision %.2f, generality %.2f)\n",
		x.TrainPrecision(), x.TrainGenerality())
}
