# Build, test and benchmark entry points. The bench target runs every
# benchmark gate (columnar, pushdown, subq, seek, shard, remote,
# segment, serve) via `pxqlexperiments -bench-suite`, writing the
# BENCH_*.json artifacts at the repo root — the same artifacts CI
# gates on.

GO ?= go

.PHONY: all build test race vet bench clean-bench

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/shard ./internal/core

vet:
	$(GO) run ./cmd/pxqlvet ./...

bench:
	$(GO) run ./cmd/pxqlexperiments -bench-suite

clean-bench:
	rm -f BENCH_*.json
