package perfxplain

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// Shared small logs for the public-API tests (collection is deterministic).
var (
	apiOnce  sync.Once
	apiJobs  *Log
	apiTasks *Log
	apiErr   error
)

func smallLogs(t *testing.T) (*Log, *Log) {
	t.Helper()
	apiOnce.Do(func() {
		apiJobs, apiTasks, apiErr = Collect(SweepOptions{Small: true, Seed: 42})
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiJobs, apiTasks
}

const whySlowerSrc = `
DESPITE numinstances_issame = T AND pigscript_issame = T
OBSERVED duration_compare = GT
EXPECTED duration_compare = SIM`

func boundWhySlower(t *testing.T, jobs *Log) *Query {
	t.Helper()
	q, err := ParseQuery(whySlowerSrc)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, ok := FindPairOfInterest(jobs, q, 1)
	if !ok {
		t.Fatal("no pair of interest in small log")
	}
	q.Bind(id1, id2)
	return q
}

func TestCollectSmall(t *testing.T) {
	jobs, tasks := smallLogs(t)
	if jobs.Len() != 32 {
		t.Errorf("jobs = %d", jobs.Len())
	}
	if tasks.Len() == 0 {
		t.Error("no tasks")
	}
	ids := jobs.IDs()
	if len(ids) != jobs.Len() || ids[0] != "job-0000" {
		t.Errorf("IDs = %v...", ids[:3])
	}
	names := jobs.FeatureNames()
	if len(names) == 0 || names[len(names)-1] != "duration" {
		t.Errorf("feature names end = %v", names[len(names)-1])
	}
	v, ok := jobs.Feature("job-0000", "pigscript")
	if !ok || !strings.HasSuffix(v, ".pig") {
		t.Errorf("Feature = %q, %v", v, ok)
	}
	if _, ok := jobs.Feature("ghost", "pigscript"); ok {
		t.Error("unknown record should miss")
	}
	if _, ok := jobs.Feature("job-0000", "nope"); ok {
		t.Error("unknown feature should miss")
	}
}

func TestEndToEndExplain(t *testing.T) {
	jobs, _ := smallLogs(t)
	q := boundWhySlower(t, jobs)
	ex, err := NewExplainer(jobs, Options{Width: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x, err := ex.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if x.Because() == "true" || x.Because() == "" {
		t.Errorf("empty explanation: %q", x.Because())
	}
	if x.TrainPrecision() <= 0 || x.TrainPrecision() > 1 {
		t.Errorf("train precision = %v", x.TrainPrecision())
	}
	if !strings.Contains(x.String(), "BECAUSE") {
		t.Errorf("String = %q", x.String())
	}
	// Evaluate on the same log: must produce sane probabilities.
	m, err := Evaluate(jobs, q, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision < 0 || m.Precision > 1 || m.Generality <= 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestExplainQueryWithForClause(t *testing.T) {
	jobs, _ := smallLogs(t)
	q := boundWhySlower(t, jobs)
	id1, id2 := q.Pair()
	src := "FOR J1, J2 WHERE J1.JobID = '" + id1 + "' AND J2.JobID = '" + id2 + "'" + whySlowerSrc
	ex, err := NewExplainer(jobs, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x, err := ex.ExplainQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if x.Because() == "" {
		t.Error("no explanation")
	}
	if _, err := ex.ExplainQuery("NOT PXQL"); err == nil {
		t.Error("bad source should error")
	}
}

func TestDespiteGeneration(t *testing.T) {
	jobs, _ := smallLogs(t)
	// Under-specified query: no despite clause.
	q, err := ParseQuery("OBSERVED duration_compare = GT EXPECTED duration_compare = SIM")
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, ok := FindPairOfInterest(jobs, q, 2)
	if !ok {
		t.Fatal("no pair")
	}
	q.Bind(id1, id2)
	ex, err := NewExplainer(jobs, Options{DespiteWidth: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	des, err := ex.GenerateDespite(q)
	if err != nil {
		t.Fatal(err)
	}
	if des == "" || des == "true" {
		t.Errorf("despite = %q", des)
	}
	x, err := ex.ExplainWithDespite(q)
	if err != nil {
		t.Fatal(err)
	}
	if x.Despite() == "true" {
		t.Error("ExplainWithDespite produced no despite clause")
	}
}

func TestBaselinesPublicAPI(t *testing.T) {
	jobs, _ := smallLogs(t)
	q := boundWhySlower(t, jobs)
	for name, fn := range map[string]func() (*Explanation, error){
		"RuleOfThumb": func() (*Explanation, error) { return RuleOfThumbExplain(jobs, q, 0, 1) },
		"SimButDiff":  func() (*Explanation, error) { return SimButDiffExplain(jobs, q, 0, 1) },
	} {
		x, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if x.Because() == "" {
			t.Errorf("%s: empty clause", name)
		}
		if _, err := Evaluate(jobs, q, x, Options{}); err != nil {
			t.Errorf("%s: evaluate: %v", name, err)
		}
	}
}

func TestLogCSVRoundTripPublic(t *testing.T) {
	jobs, _ := smallLogs(t)
	var buf bytes.Buffer
	if err := jobs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLogCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != jobs.Len() {
		t.Errorf("round trip %d vs %d", back.Len(), jobs.Len())
	}
	var jbuf bytes.Buffer
	if err := jobs.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	backJ, err := ReadLogJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	if backJ.Len() != jobs.Len() {
		t.Errorf("json round trip %d vs %d", backJ.Len(), jobs.Len())
	}
	if _, err := ReadLogCSV(strings.NewReader("bogus")); err == nil {
		t.Error("bad CSV should error")
	}
}

func TestFilterPublic(t *testing.T) {
	jobs, _ := smallLogs(t)
	one := jobs.Filter(func(id string) bool { return id == "job-0000" })
	if one.Len() != 1 {
		t.Errorf("filtered = %d", one.Len())
	}
}

// The paper's headline comparison, asserted end to end on the full
// Table 2 log: at width 3 PerfXplain's test precision clearly exceeds
// both baselines on the WhySlower query.
func TestPaperHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	jobs, _, err := Collect(SweepOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	q := boundWhySlower(t, jobs)
	ex, err := NewExplainer(jobs, Options{Width: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	px, err := ex.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := RuleOfThumbExplain(jobs, q, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sbd, err := SimButDiffExplain(jobs, q, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	mPX, err := Evaluate(jobs, q, px, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mROT, err := Evaluate(jobs, q, rot, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mSBD, err := Evaluate(jobs, q, sbd, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mPX.Precision <= mROT.Precision || mPX.Precision <= mSBD.Precision {
		t.Errorf("PerfXplain %.3f should beat RuleOfThumb %.3f and SimButDiff %.3f",
			mPX.Precision, mROT.Precision, mSBD.Precision)
	}
}
