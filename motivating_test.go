package perfxplain

// The paper's Section 2.1 motivating scenario, end to end: a user debugs
// a job by re-running it on a much smaller dataset, expecting a big
// speed-up — but both take the same time, because the block size is large
// and neither dataset saturates the cluster. PerfXplain should explain
// the surprise with a block-size (or cluster-capacity) predicate.

import (
	"fmt"
	"strings"
	"testing"

	"perfxplain/internal/collect"
	"perfxplain/internal/excite"
	"perfxplain/internal/joblog"
	"perfxplain/internal/mapreduce"
	"perfxplain/internal/pig"
)

func TestMotivatingScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-job simulation in -short mode")
	}
	const gb = 1 << 30
	jobSchema := collect.JobSchema()
	logRaw := joblog.NewLog(jobSchema)

	// A background log: jobs at various sizes and block sizes, with three
	// repetitions per configuration so the explainer has enough pairs to
	// separate real causes from monitoring noise.
	idx := 0
	addJob := func(bytes int64, blockMB int64, instances int) string {
		id := fmt.Sprintf("job-%04d", idx)
		idx++
		res, err := mapreduce.Run(mapreduce.JobSpec{
			ID:     id,
			Script: pig.SimpleFilter(),
			Input:  excite.DatasetForBytes("excite", bytes),
			Config: mapreduce.Config{
				NumInstances:      instances,
				BlockSize:         blockMB << 20,
				ReduceTasksFactor: 1,
				IOSortFactor:      10,
				Seed:              int64(1000 + idx),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		logRaw.MustAppend(collect.JobRecord(jobSchema, res, float64(idx)*3600))
		return id
	}

	for rep := 0; rep < 3; rep++ {
		for _, bytes := range []int64{1 * gb, 4 * gb, 16 * gb, 32 * gb} {
			for _, blockMB := range []int64{64, 1024} {
				for _, instances := range []int{4, 16} {
					addJob(bytes, blockMB, instances)
				}
			}
		}
	}
	jobs := &Log{l: logRaw}

	// The surprise must exist in the data: some job processed several
	// times the data of another in the same time, because large blocks on
	// a big cluster leave both jobs bounded by per-block processing time.
	q, err := ParseQuery(`
		DESPITE inputsize_compare = GT
		OBSERVED duration_compare = SIM
		EXPECTED duration_compare = GT`)
	if err != nil {
		t.Fatal(err)
	}
	big, small, ok := FindPairOfInterest(jobs, q, 1)
	if !ok {
		t.Fatal("the motivating phenomenon did not occur in the simulated log")
	}
	q.Bind(big, small)
	inBig, _ := jobs.Feature(big, "inputsize")
	inSmall, _ := jobs.Feature(small, "inputsize")
	dBig, _ := jobs.Feature(big, "duration")
	dSmall, _ := jobs.Feature(small, "duration")
	t.Logf("big job: %s bytes in %ss; small job: %s bytes in %ss", inBig, dBig, inSmall, dSmall)

	ex, err := NewExplainer(jobs, Options{Width: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x, err := ex.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explanation: %s", x.Because())

	// The paper's explanation is "because the block size is large"; a
	// cluster-capacity predicate (instances/slots/map tasks) expresses the
	// same cause from the other side.
	found := false
	for _, cause := range []string{"blocksize", "nummaptasks", "numinstances", "mapslots"} {
		if strings.Contains(x.Because(), cause) {
			found = true
		}
	}
	if !found {
		t.Errorf("explanation %q does not mention block size or cluster capacity", x.Because())
	}
	if x.TrainPrecision() < 0.45 {
		t.Errorf("train precision = %v", x.TrainPrecision())
	}
}
