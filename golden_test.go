package perfxplain

// Golden regression tests for the columnar execution-log engine: the
// refactor from row-oriented records to interned columns is required to be
// behaviour-preserving, so these tests pin the exact bytes of every
// user-visible artifact — explanation clauses, per-atom training
// diagnostics, training and held-out metrics — across feature levels 1-3,
// parallelism 1, 4 and GOMAXPROCS, and sharded execution through the
// in-process shard runner (the subprocess mode is pinned equal in
// internal/shard's equivalence suite and the pxql CLI golden test). The
// files under testdata/golden
// were captured from the pre-columnar implementation; regenerate with
//
//	go test -run TestGolden -update
//
// only when an intentional behaviour change is being made.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// goldenParallelisms are the worker counts every golden artifact must be
// identical under (0 = GOMAXPROCS).
var goldenParallelisms = []int{1, 4, 0}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: output diverged from golden\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// renderExplanation dumps every user-visible facet of an explanation with
// full float precision.
func renderExplanation(b *strings.Builder, x *Explanation) {
	fmt.Fprintf(b, "explanation:\n%s\n", x)
	fmt.Fprintf(b, "train: precision=%v generality=%v relevance=%v\n",
		x.TrainPrecision(), x.TrainGenerality(), x.TrainRelevance())
	for i, a := range x.AtomDetails() {
		fmt.Fprintf(b, "atom[%d]: %s precision=%v generality=%v\n", i, a.Atom, a.Precision, a.Generality)
	}
}

type goldenCase struct {
	name       string
	taskLevel  bool
	src        string // PXQL without FOR clause
	pairSeed   int64
	genDespite bool
	target     string // Options.Target override ("" = duration)
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "whyslower",
			src: `DESPITE numinstances_issame = T AND pigscript_issame = T
OBSERVED duration_compare = GT
EXPECTED duration_compare = SIM`,
			pairSeed: 1,
		},
		{
			name: "whyslower_gendespite",
			src: `OBSERVED duration_compare = GT
EXPECTED duration_compare = SIM`,
			pairSeed:   1,
			genDespite: true,
		},
		{
			name:      "whylasttaskfaster",
			taskLevel: true,
			src: `DESPITE jobid_issame = T AND inputsize_compare = SIM AND hostname_issame = T
OBSERVED duration_compare = LT
EXPECTED duration_compare = SIM`,
			pairSeed: 2,
		},
		{
			name: "othermetric_cpu",
			src: `DESPITE pigscript_issame = T
OBSERVED cpu_seconds_total_compare = GT
EXPECTED cpu_seconds_total_compare = SIM`,
			pairSeed: 3,
			target:   "cpu_seconds_total",
		},
	}
}

// TestGoldenExplanations pins PerfXplain's explanations, atom details and
// metrics for several queries at feature levels 1-3, asserting the bytes
// are identical at parallelism 1, 4 and GOMAXPROCS.
func TestGoldenExplanations(t *testing.T) {
	jobs, tasks := smallLogs(t)
	for _, gc := range goldenCases() {
		log := jobs
		if gc.taskLevel {
			log = tasks
		}
		q, err := ParseQuery(gc.src)
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		id1, id2, ok := FindPairOfInterest(log, q, gc.pairSeed)
		if !ok {
			t.Fatalf("%s: no pair of interest", gc.name)
		}
		q.Bind(id1, id2)
		for level := 1; level <= 3; level++ {
			// One body over execution variants: the direct path at every
			// parallelism level, then sharded execution (in-process
			// runner) at several shard counts — 64 far exceeds the pair
			// space, so empty shards are pinned too. All must produce the
			// same bytes.
			type variant struct {
				name        string
				parallelism int
				shards      int
			}
			variants := make([]variant, 0, len(goldenParallelisms)+2)
			for _, p := range goldenParallelisms {
				variants = append(variants, variant{fmt.Sprintf("parallelism=%d", p), p, 0})
			}
			variants = append(variants, variant{"shards=3", 0, 3}, variant{"shards=64", 0, 64})
			outputs := make([]string, len(variants))
			for vi, v := range variants {
				var b strings.Builder
				fmt.Fprintf(&b, "query %s level %d pair (%s, %s)\n", gc.name, level, id1, id2)
				opt := Options{Width: 3, DespiteWidth: 3, FeatureLevel: level,
					Seed: 7, Target: gc.target, Parallelism: v.parallelism, Shards: v.shards}
				ex, err := NewExplainer(log, opt)
				if err != nil {
					t.Fatalf("%s L%d %s: %v", gc.name, level, v.name, err)
				}
				var x *Explanation
				if gc.genDespite {
					x, err = ex.ExplainWithDespite(q)
				} else {
					x, err = ex.Explain(q)
				}
				if err != nil {
					t.Fatalf("%s L%d %s: %v", gc.name, level, v.name, err)
				}
				renderExplanation(&b, x)
				m, err := Evaluate(log, q, x, Options{Seed: 7, Parallelism: v.parallelism})
				if err != nil {
					t.Fatalf("%s L%d %s evaluate: %v", gc.name, level, v.name, err)
				}
				fmt.Fprintf(&b, "heldout: precision=%v generality=%v relevance=%v\n",
					m.Precision, m.Generality, m.Relevance)
				outputs[vi] = b.String()
			}
			for vi := 1; vi < len(outputs); vi++ {
				if outputs[vi] != outputs[0] {
					t.Errorf("%s L%d: %s diverges from %s\n--- %s ---\n%s--- %s ---\n%s",
						gc.name, level, variants[vi].name, variants[0].name,
						variants[vi].name, outputs[vi], variants[0].name, outputs[0])
				}
			}
			checkGolden(t, fmt.Sprintf("%s_L%d", gc.name, level), outputs[0])
		}
	}
}

// TestGoldenBaselines pins the two baseline generators' clauses and their
// held-out metrics; SimButDiff must additionally be identical at every
// parallelism level.
func TestGoldenBaselines(t *testing.T) {
	jobs, _ := smallLogs(t)
	q := boundWhySlower(t, jobs)

	var b strings.Builder
	rot, err := RuleOfThumbExplain(jobs, q, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "ruleofthumb because: %s\n", rot.Because())
	m, err := Evaluate(jobs, q, rot, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "ruleofthumb heldout: precision=%v generality=%v relevance=%v\n",
		m.Precision, m.Generality, m.Relevance)

	outputs := make([]string, len(goldenParallelisms))
	for pi, p := range goldenParallelisms {
		sbd, err := SimButDiffExplainP(jobs, q, 3, 7, p)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := Evaluate(jobs, q, sbd, Options{Seed: 7, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		outputs[pi] = fmt.Sprintf("simbutdiff because: %s\nsimbutdiff heldout: precision=%v generality=%v relevance=%v\n",
			sbd.Because(), sm.Precision, sm.Generality, sm.Relevance)
	}
	for pi := 1; pi < len(outputs); pi++ {
		if outputs[pi] != outputs[0] {
			t.Errorf("simbutdiff: parallelism %d diverges:\n%s\nvs\n%s",
				goldenParallelisms[pi], outputs[pi], outputs[0])
		}
	}
	b.WriteString(outputs[0])
	checkGolden(t, "baselines", b.String())
}
