package perfxplain_test

import (
	"fmt"
	"log"

	"perfxplain"
)

// The canonical flow: collect (or load) a log, pose a PXQL query, explain.
func Example() {
	jobs, _, err := perfxplain.Collect(perfxplain.SweepOptions{Small: true, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	q, err := perfxplain.ParseQuery(`
		DESPITE numinstances_issame = T AND pigscript_issame = T
		OBSERVED duration_compare = GT
		EXPECTED duration_compare = SIM`)
	if err != nil {
		log.Fatal(err)
	}
	id1, id2, ok := perfxplain.FindPairOfInterest(jobs, q, 1)
	if !ok {
		log.Fatal("no matching pair")
	}
	q.Bind(id1, id2)

	ex, err := perfxplain.NewExplainer(jobs, perfxplain.Options{Width: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	x, err := ex.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(x.Because())
	// Output: inputsize_compare = GT
}

// PXQL queries round-trip through their string form.
func ExampleParseQuery() {
	q, err := perfxplain.ParseQuery(`
		FOR J1, J2 WHERE J1.JobID = 'job-0012' AND J2.JobID = 'job-0340'
		DESPITE blocksize >= 128MB
		OBSERVED duration_compare = SIM
		EXPECTED duration_compare = GT`)
	if err != nil {
		log.Fatal(err)
	}
	id1, id2 := q.Pair()
	fmt.Println(id1, id2)
	// Output: job-0012 job-0340
}

// Queries about metrics other than runtime use NewTargetQuery plus
// Options.Target.
func ExampleNewTargetQuery() {
	q, err := perfxplain.NewTargetQuery("hdfs_bytes_written", "GT", "SIM")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	// Output:
	// OBSERVED hdfs_bytes_written_compare = GT
	// EXPECTED hdfs_bytes_written_compare = SIM
}
