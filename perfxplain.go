// Package perfxplain is a from-scratch reproduction of PerfXplain
// (Khoussainova, Balazinska, Suciu — "PerfXplain: Debugging MapReduce Job
// Performance", PVLDB 5(7), 2012): a system that explains the relative
// performance of pairs of MapReduce jobs or tasks from a log of past
// executions.
//
// A user asks a PXQL query — "despite these conditions, I observed this
// behaviour but expected that one; why?" — over a pair of executions, and
// PerfXplain answers with a (despite, because) explanation learned from
// the log:
//
//	jobs, tasks, _ := perfxplain.Collect(perfxplain.SweepOptions{Small: true, Seed: 1})
//	ex, _ := perfxplain.NewExplainer(jobs, perfxplain.Options{})
//	x, _ := ex.ExplainQuery(`
//	    FOR J1, J2 WHERE J1.JobID = 'job-0004' AND J2.JobID = 'job-0020'
//	    DESPITE numinstances_issame = T AND pigscript_issame = T
//	    OBSERVED duration_compare = GT
//	    EXPECTED duration_compare = SIM`)
//	fmt.Println(x)
//
// The package also bundles the full substrate the paper's evaluation
// needed — a working MapReduce engine with a virtual-time EC2-style
// cluster simulator, a Ganglia-style monitor, the two Pig benchmark
// workloads over a synthetic Excite query log, Hadoop-style job-history
// parsing — plus the paper's two baseline explanation generators
// (RuleOfThumb and SimButDiff) and quality metrics (relevance, precision,
// generality).
package perfxplain

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"perfxplain/internal/baselines"
	"perfxplain/internal/collect"
	"perfxplain/internal/core"
	"perfxplain/internal/features"
	"perfxplain/internal/hadooplog"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
	"perfxplain/internal/shard"
)

// Log is an execution log: one record per job or task with its raw
// features (configuration, data characteristics, counters, Ganglia
// averages) and duration.
type Log struct {
	l *joblog.Log
	// segs is set on logs obtained from Store.Snapshot: the watermark's
	// segment views, which explainers and evaluations use to plan shards
	// along segment boundaries and ship per-segment hashed slices. Nil
	// for flat logs (CSV/JSON reads, Collect); results are identical
	// either way.
	segs []joblog.SegmentView
}

// layout resolves the log's segment views into a shard-planning layout;
// nil for flat logs (the planners then cut the log statically).
func (l *Log) layout() *core.SegmentLayout {
	if len(l.segs) == 0 {
		return nil
	}
	lay, err := core.NewSegmentLayout(l.segs)
	if err != nil {
		return nil
	}
	return lay
}

// Len returns the number of logged executions.
func (l *Log) Len() int { return l.l.Len() }

// IDs returns the record identifiers in log order.
func (l *Log) IDs() []string {
	out := make([]string, 0, l.l.Len())
	for _, r := range l.l.Records {
		out = append(out, r.ID)
	}
	return out
}

// FeatureNames returns the raw feature names of the log's schema.
func (l *Log) FeatureNames() []string {
	fields := l.l.Schema.Fields()
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = f.Name
	}
	return out
}

// FieldInfo describes one schema field: its name and kind ("numeric" or
// "nominal").
type FieldInfo struct {
	Name string
	Kind string
}

// Fields returns the log's schema as (name, kind) pairs in field order —
// the introspection behind the explanation server's /api/schema endpoint
// and the REPL's .schema command.
func (l *Log) Fields() []FieldInfo {
	fields := l.l.Schema.Fields()
	out := make([]FieldInfo, len(fields))
	for i, f := range fields {
		out[i] = FieldInfo{Name: f.Name, Kind: f.Kind.String()}
	}
	return out
}

// Domain returns the sorted distinct non-missing values observed for a
// nominal field (nil for numeric or unknown fields). The scan is
// memoized on the log; callers must not mutate the result.
func (l *Log) Domain(field string) []string { return l.l.Domain(field) }

// NumericRange returns the observed min and max of a numeric field,
// ignoring missing values. ok is false when the field is absent,
// nominal, or entirely missing.
func (l *Log) NumericRange(field string) (min, max float64, ok bool) {
	return l.l.NumericRange(field)
}

// Feature returns the string form of a record's raw feature value; the
// empty string means missing. ok is false when the record or feature does
// not exist.
func (l *Log) Feature(id, feature string) (value string, ok bool) {
	r := l.l.Find(id)
	if r == nil {
		return "", false
	}
	if _, exists := l.l.Schema.Index(feature); !exists {
		return "", false
	}
	return l.l.Value(r, feature).String(), true
}

// Filter returns a new log holding the records for which keep returns
// true; keep receives the record's ID.
func (l *Log) Filter(keep func(id string) bool) *Log {
	return &Log{l: l.l.Filter(func(r *joblog.Record) bool { return keep(r.ID) })}
}

// WriteCSV writes the log in the self-describing CSV format.
func (l *Log) WriteCSV(w io.Writer) error { return l.l.WriteCSV(w) }

// WriteJSON writes the log as JSON.
func (l *Log) WriteJSON(w io.Writer) error { return l.l.WriteJSON(w) }

// ReadLogCSV reads a log written by WriteCSV.
func ReadLogCSV(r io.Reader) (*Log, error) {
	l, err := joblog.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return &Log{l: l}, nil
}

// ReadLogJSON reads a log written by WriteJSON.
func ReadLogJSON(r io.Reader) (*Log, error) {
	l, err := joblog.ReadJSON(r)
	if err != nil {
		return nil, err
	}
	return &Log{l: l}, nil
}

// SweepOptions configures Collect.
type SweepOptions struct {
	// Small runs a 32-job grid instead of the paper's full 540-job
	// Table 2 sweep — handy for tests and examples.
	Small bool
	// Seed makes the collected log reproducible.
	Seed int64
	// Parallelism bounds the worker goroutines simulating sweep cells
	// (<= 0 means all cores). The collected log is byte-identical at
	// every setting.
	Parallelism int
	// SealEvery is the segment-seal threshold used by CollectStream
	// (non-positive selects the library default). Collect ignores it.
	SealEvery int
}

// Collect executes the paper's parameter sweep on the simulated cluster
// and returns the job and task execution logs.
func Collect(opt SweepOptions) (jobs, tasks *Log, err error) {
	sweep := collect.DefaultSweep(opt.Seed)
	if opt.Small {
		sweep = collect.SmallSweep(opt.Seed)
	}
	sweep.Parallelism = opt.Parallelism
	res, err := sweep.Collect()
	if err != nil {
		return nil, nil, err
	}
	return &Log{l: res.Jobs}, &Log{l: res.Tasks}, nil
}

// CollectStream is Collect in tailing mode: grid cells stream into
// segment stores as they complete in grid order, so queries can run
// against a watermark snapshot while the rest of the sweep is still
// simulating. The stores' snapshots are byte-identical to Collect's
// logs for the same options.
func CollectStream(opt SweepOptions) (jobs, tasks *Store, err error) {
	sweep := collect.DefaultSweep(opt.Seed)
	if opt.Small {
		sweep = collect.SmallSweep(opt.Seed)
	}
	sweep.Parallelism = opt.Parallelism
	res, err := sweep.CollectStream(opt.SealEvery)
	if err != nil {
		return nil, nil, err
	}
	return &Store{res.Jobs}, &Store{res.Tasks}, nil
}

// Store is a growable execution log: sealed immutable segments plus a
// small mutable tail. Appends never invalidate what is already sealed —
// a sealed segment keeps its content hash, columnar planes, sorted
// indexes and statistics forever, so explainers over successive
// snapshots re-ship only the tail to shard workers while the sealed
// segments stay cached worker-side. Every method is safe for concurrent
// use; queries run against Snapshot(), a consistent watermark that
// later appends never mutate.
type Store struct {
	s *joblog.Store
}

// NewStore returns an empty store with the same schema as like.
// sealEvery is the tail size at which a segment seals (non-positive
// selects the library default).
func NewStore(like *Log, sealEvery int) *Store {
	return &Store{joblog.NewStore(like.l.Schema, sealEvery)}
}

// Ingest appends every record of l to the store, in log order.
func (s *Store) Ingest(l *Log) error {
	for _, r := range l.l.Records {
		if err := s.s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Seal forces the current tail into a sealed segment (a no-op on an
// empty tail). Appends normally seal automatically at the threshold;
// explicit sealing marks a natural boundary — the end of a batch —
// so the next snapshot ships no mutable tail at all.
func (s *Store) Seal() { s.s.Seal() }

// Len returns the number of records (sealed plus tail).
func (s *Store) Len() int { return s.s.Len() }

// SealedSegments returns the number of sealed segments.
func (s *Store) SealedSegments() int { return s.s.SealedSegments() }

// Snapshot returns the store's current contents as a Log: a consistent
// watermark that later appends never change. The snapshot carries its
// segment views, so explainers and evaluations built over it plan
// shards along segment boundaries and ship per-segment hashed slices —
// explanations are byte-identical to the same records in a flat log.
func (s *Store) Snapshot() *Log {
	snap := s.s.Snapshot()
	return &Log{l: snap.Log(), segs: snap.Segments()}
}

// Watermark returns the store's generation counter: a monotonic value
// ticked by every append (and every forced seal). Two snapshots taken
// at the same watermark hold exactly the same records, so the watermark
// is a sound cache key for anything derived from a snapshot.
func (s *Store) Watermark() uint64 { return s.s.Gen() }

// SnapshotAt returns the current snapshot together with the watermark
// it was taken at, as one atomic observation — unlike a separate
// Watermark() + Snapshot() pair, no append can slip between the two.
// Snapshots are memoized per watermark, so repeated calls between
// appends return the same Log (with its warmed columnar planes, sorted
// indexes and bitmap memos).
func (s *Store) SnapshotAt() (*Log, uint64) {
	snap := s.s.Snapshot()
	return &Log{l: snap.Log(), segs: snap.Segments()}, snap.Gen()
}

// LogsFromHistory parses Hadoop-style job-history streams (as written by
// the pxqlcollect tool) into job and task logs. History files carry
// counters, placement and timing but no Ganglia metrics; those features
// are missing in the result, which PerfXplain handles natively.
func LogsFromHistory(readers ...io.Reader) (jobs, tasks *Log, err error) {
	jobSchema := collect.JobSchema()
	taskSchema := collect.TaskSchema()
	jl := joblog.NewLog(jobSchema)
	tl := joblog.NewLog(taskSchema)
	for i, r := range readers {
		res, err := hadooplog.ReadJob(r)
		if err != nil {
			return nil, nil, fmt.Errorf("perfxplain: history stream %d: %w", i, err)
		}
		if err := jl.Append(collect.JobRecord(jobSchema, res, res.Start)); err != nil {
			return nil, nil, err
		}
		for _, tr := range collect.TaskRecords(taskSchema, res, 0) {
			if err := tl.Append(tr); err != nil {
				return nil, nil, err
			}
		}
	}
	return &Log{l: jl}, &Log{l: tl}, nil
}

// Query is a parsed PXQL query.
type Query struct {
	q *pxql.Query
}

// ParseQuery parses PXQL source (see the package example for the
// grammar). The FOR/WHERE clause binds the pair of interest.
func ParseQuery(src string) (*Query, error) {
	q, err := pxql.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Query{q}, nil
}

// Bind sets the query's pair of interest by record ID.
func (q *Query) Bind(id1, id2 string) {
	q.q.ID1, q.q.ID2 = id1, id2
}

// Pair returns the bound pair of interest.
func (q *Query) Pair() (id1, id2 string) { return q.q.ID1, q.q.ID2 }

// String renders the query in PXQL syntax.
func (q *Query) String() string { return q.q.String() }

// Options tunes explanation generation; zero values take the paper's
// defaults (width 3, sample 2000, precision weight 0.8, full feature set).
type Options struct {
	// Width is the number of predicates in the because clause.
	Width int
	// DespiteWidth is the width of generated despite extensions.
	DespiteWidth int
	// SampleSize is the balanced training-sample target.
	SampleSize int
	// FeatureLevel restricts explanation features: 1 = isSame only,
	// 2 = + compare/diff, 3 = full (default).
	FeatureLevel int
	// MaxPairs caps pair enumeration (0 = library default).
	MaxPairs int
	// SampleMode selects how an over-budget pair space is thinned:
	// "bernoulli" (or empty, the default) keeps each candidate pair
	// independently — the historical, golden-pinned behaviour —
	// while "stratified" draws a fixed quota per blocking group, so
	// rare groups survive skew, and attaches 95% Wilson confidence
	// bounds to the explanation's training diagnostics (see
	// AtomDetail and TrainRelevanceBounds). Both modes are
	// deterministic per seed and byte-identical at every parallelism
	// and shard count.
	SampleMode string
	// SampleBudget is the stratified total pair budget (0 = MaxPairs).
	SampleBudget int
	// SamplePilot, in (0, 1), turns the stratified mode two-pass: that
	// fraction of SampleBudget is spent on a pilot round under the
	// proportional allocation, and the remainder is re-allocated toward
	// the strata whose pilot estimates carry the widest Wilson
	// intervals — uncertain strata get the draws, settled ones stop
	// early. 0 (the default) keeps the one-shot proportional rule.
	// Requires SampleMode "stratified"; determinism guarantees are
	// unchanged (byte-identical at every parallelism and shard count).
	SamplePilot float64
	// Seed drives sampling; runs are deterministic per seed.
	Seed int64
	// Target selects the performance metric being explained (default
	// "duration"). The paper's approach applies directly to any numeric
	// metric in the log.
	Target string
	// DiverseSample biases the training sample toward a varied set of
	// executions (the paper's Section 4.3 future-work idea).
	DiverseSample bool
	// Parallelism bounds the worker goroutines used throughout the
	// explanation pipeline — pair enumeration, materialization, predicate
	// scoring and evaluation. Values <= 0 mean runtime.GOMAXPROCS(0), i.e.
	// all available cores. Explanations are byte-identical at every
	// setting: same seed, same answer, whatever the hardware.
	Parallelism int
	// Shards enables sharded execution of the pair pipeline: the
	// quadratic stages (enumeration, materialization, candidate scoring)
	// are planned into this many self-contained shard specs and executed
	// by a shard runtime — in-process by default, on worker subprocesses
	// when ShardWorkers is set. 0 disables sharding (the direct path).
	// Explanations are byte-identical at every shard count and in every
	// execution mode.
	Shards int
	// ShardWorkers, when > 0 alongside Shards, executes shards on that
	// many worker subprocesses speaking the shard protocol over pipes.
	// Call Explainer.Close to terminate them when done. With ShardAddrs
	// set it is the number of socket connections instead (default: one
	// per address).
	ShardWorkers int
	// ShardWorkerCommand is the argv spawned per worker (default: this
	// executable with the -shard-worker flag appended, which is what the
	// pxql and pxqlexperiments binaries implement).
	ShardWorkerCommand []string
	// ShardAddrs, when set alongside Shards, executes shards on remote
	// socket workers — machines running `pxql -shard-worker -listen`
	// (or ListenAndServeShardWorkers). Requires ShardToken.
	ShardAddrs []string
	// ShardToken is the shared secret of the socket handshake; it must
	// match the remote listeners' token.
	ShardToken string
	// SharedPool executes shards on a caller-owned worker pool (see
	// NewWorkerPool) instead of constructing one per explainer: harnesses
	// that build many explainers reuse one fleet — and its worker-side
	// slice caches — across all of them. Overrides ShardWorkers and
	// ShardAddrs; Explainer.Close leaves a shared pool running.
	SharedPool *WorkerPool
}

// WorkerPool is a shared fleet of shard workers — subprocesses or
// remote socket workers — that many explainers and evaluations can use
// concurrently. Hoisting pool ownership out of per-explainer
// construction keeps workers (and the log slices cached on them) alive
// across repeated explanations; close it once, when all users are done.
type WorkerPool struct {
	p *shard.Pool
}

// PoolOptions configures NewWorkerPool.
type PoolOptions struct {
	// Workers is the number of worker connections (default: 1, or one
	// per address when Addrs is set).
	Workers int
	// Command is the subprocess argv (default: this executable with
	// -shard-worker appended). Ignored when Addrs is set.
	Command []string
	// Env is appended to each subprocess worker's environment.
	Env []string
	// Addrs selects remote socket workers listening on these addresses.
	Addrs []string
	// Token is the shared handshake secret; required with Addrs.
	Token string
}

// NewWorkerPool builds a shard worker pool. The fleet is dialed lazily
// on first use; Close terminates it.
func NewWorkerPool(opt PoolOptions) (*WorkerPool, error) {
	p := &shard.Pool{Workers: opt.Workers}
	if len(opt.Addrs) > 0 {
		if opt.Token == "" {
			return nil, fmt.Errorf("perfxplain: remote shard workers require PoolOptions.Token")
		}
		p.Dialer = &shard.SocketDialer{Addrs: opt.Addrs, Token: opt.Token}
		if p.Workers <= 0 {
			p.Workers = len(opt.Addrs)
		}
		return &WorkerPool{p}, nil
	}
	cmd := opt.Command
	if len(cmd) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("perfxplain: resolve shard worker command: %w", err)
		}
		cmd = []string{exe, "-shard-worker"}
	}
	p.Command = cmd
	p.Env = opt.Env
	return &WorkerPool{p}, nil
}

// Close terminates the pool's workers. It is idempotent and safe to
// call concurrently with in-flight work, which fails with transport
// errors rather than hanging.
func (wp *WorkerPool) Close() { wp.p.Close() }

// Stats returns the pool's runtime counters.
func (wp *WorkerPool) Stats() ShardStats { return newShardStats(wp.p.Stats()) }

// ShardStats are the shard runtime's counters: protocol frames, frame
// bytes on metered transports, the content-addressed slice cache's
// behaviour (hits = payloads not re-shipped; misses = full ships), and
// the prefetch pipeline's (sent = payloads shipped ahead of need;
// hits = task frames that found their slice already prefetched).
type ShardStats struct {
	FramesSent, FramesReceived int64
	BytesSent, BytesReceived   int64
	SliceHits, SliceMisses     int64
	SliceBytesSaved            int64
	PrefetchSent, PrefetchHits int64
}

func newShardStats(s shard.StatsSnapshot) ShardStats {
	return ShardStats{
		FramesSent:      s.FramesSent,
		FramesReceived:  s.FramesReceived,
		BytesSent:       s.BytesSent,
		BytesReceived:   s.BytesReceived,
		SliceHits:       s.SliceHits,
		SliceMisses:     s.SliceMisses,
		SliceBytesSaved: s.SliceBytesSaved,
		PrefetchSent:    s.PrefetchSent,
		PrefetchHits:    s.PrefetchHits,
	}
}

// String renders the counters in the CLIs' -verbose format (one
// formatter, shared with the shard runtime, so the two never drift).
func (s ShardStats) String() string {
	return shard.StatsSnapshot{
		FramesSent:      s.FramesSent,
		FramesReceived:  s.FramesReceived,
		BytesSent:       s.BytesSent,
		BytesReceived:   s.BytesReceived,
		SliceHits:       s.SliceHits,
		SliceMisses:     s.SliceMisses,
		SliceBytesSaved: s.SliceBytesSaved,
		PrefetchSent:    s.PrefetchSent,
		PrefetchHits:    s.PrefetchHits,
	}.String()
}

// coreConfig resolves the options into a core config plus the worker
// pool the explainer owns (nil when shards run in-process or on a
// caller-owned shared pool).
func (o Options) coreConfig() (core.Config, *shard.Pool, error) {
	cfg := core.Config{
		Width:         o.Width,
		DespiteWidth:  o.DespiteWidth,
		SampleSize:    o.SampleSize,
		MaxPairs:      o.MaxPairs,
		SampleMode:    o.SampleMode,
		SampleBudget:  o.SampleBudget,
		SamplePilot:   o.SamplePilot,
		Seed:          o.Seed,
		Target:        o.Target,
		DiverseSample: o.DiverseSample,
		Parallelism:   o.Parallelism,
		Shards:        o.Shards,
	}
	if o.FeatureLevel != 0 {
		cfg.Level = features.Level(o.FeatureLevel)
	}
	if (o.ShardWorkers > 0 || len(o.ShardAddrs) > 0 || o.SharedPool != nil) && o.Shards <= 0 {
		return core.Config{}, nil, fmt.Errorf("perfxplain: shard workers require Options.Shards")
	}
	if o.Shards <= 0 {
		return cfg, nil, nil
	}
	switch {
	case o.SharedPool != nil:
		cfg.Runner = o.SharedPool.p
		return cfg, nil, nil
	case len(o.ShardAddrs) > 0:
		if o.ShardToken == "" {
			return core.Config{}, nil, fmt.Errorf("perfxplain: Options.ShardAddrs requires Options.ShardToken")
		}
		workers := o.ShardWorkers
		if workers <= 0 {
			workers = len(o.ShardAddrs)
		}
		pool := &shard.Pool{
			Dialer:  &shard.SocketDialer{Addrs: o.ShardAddrs, Token: o.ShardToken},
			Workers: workers,
		}
		cfg.Runner = pool
		return cfg, pool, nil
	case o.ShardWorkers > 0:
		cmd := o.ShardWorkerCommand
		if len(cmd) == 0 {
			exe, err := os.Executable()
			if err != nil {
				return core.Config{}, nil, fmt.Errorf("perfxplain: resolve shard worker command: %w", err)
			}
			cmd = []string{exe, "-shard-worker"}
		}
		pool := &shard.Pool{Command: cmd, Workers: o.ShardWorkers}
		cfg.Runner = pool
		return cfg, pool, nil
	default:
		cfg.Runner = shard.InProc{Workers: o.Parallelism}
		return cfg, nil, nil
	}
}

// Explainer answers PXQL queries over one log.
type Explainer struct {
	ex   *core.Explainer
	log  *Log
	cfg  core.Config
	pool *shard.Pool // owned; nil for in-process shards and shared pools
}

// NewExplainer builds an explainer over a job or task log. A log
// obtained from Store.Snapshot carries its segment views: the explainer
// then plans shards along segment boundaries and ships per-segment
// hashed slices, so re-explaining after appends re-ships only the tail.
func NewExplainer(log *Log, opt Options) (*Explainer, error) {
	cfg, pool, err := opt.coreConfig()
	if err != nil {
		return nil, err
	}
	cfg.Layout = log.layout()
	ex, err := core.NewExplainer(log.l, cfg)
	if err != nil {
		return nil, err
	}
	return &Explainer{ex: ex, log: log, cfg: cfg, pool: pool}, nil
}

// Close releases the explainer's resources: it terminates the worker
// pool the explainer owns (Options.ShardWorkers or Options.ShardAddrs).
// A pool shared via Options.SharedPool is left running — its owner
// closes it. Close is idempotent, safe to call concurrently with
// in-flight work, and always safe to defer.
func (e *Explainer) Close() {
	if e.pool != nil {
		e.pool.Close()
	}
}

// ShardStats returns the runtime counters of the explainer's worker
// pool; ok is false when shards run in-process or on a shared pool
// (query the WorkerPool directly for those).
func (e *Explainer) ShardStats() (s ShardStats, ok bool) {
	if e.pool == nil {
		return ShardStats{}, false
	}
	return newShardStats(e.pool.Stats()), true
}

// Explanation is a generated (despite, because) answer plus its quality
// measured on the training log.
type Explanation struct {
	x *core.Explanation
	q *pxql.Query
}

// Despite returns the generated despite extension in PXQL syntax ("true"
// when none was generated).
func (x *Explanation) Despite() string { return x.x.Despite.String() }

// Because returns the because clause in PXQL syntax.
func (x *Explanation) Because() string { return x.x.Because.String() }

// TrainPrecision is P(observed | because ∧ despite) on the training
// sample.
func (x *Explanation) TrainPrecision() float64 { return x.x.TrainPrecision }

// TrainGenerality is P(because | despite) on the training sample.
func (x *Explanation) TrainGenerality() float64 { return x.x.TrainGenerality }

// TrainRelevance is P(expected | despite) on the related training pairs.
func (x *Explanation) TrainRelevance() float64 { return x.x.TrainRelevance }

// TrainRelevanceBounds is the 95% Wilson score interval around
// TrainRelevance. ok is false when the explanation was generated in
// exact/Bernoulli mode (no interval applies: the estimate is not a
// stratified sample statistic).
func (x *Explanation) TrainRelevanceBounds() (lo, hi float64, ok bool) {
	if x.x.TrainRelevanceLo == 0 && x.x.TrainRelevanceHi == 0 {
		return 0, 0, false
	}
	return x.x.TrainRelevanceLo, x.x.TrainRelevanceHi, true
}

// String renders the explanation in the paper's DESPITE/BECAUSE form.
func (x *Explanation) String() string { return x.x.String() }

// AtomDetail is the cumulative training quality of one because-clause
// prefix, in clause order: the most important predicates come first.
type AtomDetail struct {
	// Atom is the predicate in PXQL syntax.
	Atom string
	// Precision is P(observed | atoms so far) on the training sample.
	Precision float64
	// Generality is P(atoms so far) on the training sample.
	Generality float64
	// PrecisionLo/Hi and GeneralityLo/Hi are 95% Wilson score intervals
	// around the two estimates, populated only when the explanation was
	// generated with Options.SampleMode = "stratified" (zero otherwise).
	PrecisionLo, PrecisionHi   float64
	GeneralityLo, GeneralityHi float64
}

// AtomDetails reports how each successive because-clause predicate
// tightened the explanation.
func (x *Explanation) AtomDetails() []AtomDetail {
	out := make([]AtomDetail, 0, len(x.x.Atoms))
	for _, st := range x.x.Atoms {
		out = append(out, AtomDetail{
			Atom:         st.Atom.String(),
			Precision:    st.Precision,
			Generality:   st.Generality,
			PrecisionLo:  st.PrecisionLo,
			PrecisionHi:  st.PrecisionHi,
			GeneralityLo: st.GeneralityLo,
			GeneralityHi: st.GeneralityHi,
		})
	}
	return out
}

// RenderReport renders the canonical query-plus-explanation report the
// pxql command prints — query, explanation, training quality, and the
// relevance confidence interval when one applies. The server returns
// exactly this string, so a cached answer is byte-identical to a one-shot
// CLI run over the same records.
func RenderReport(q *Query, x *Explanation) string {
	var b strings.Builder
	b.WriteString("query:\n")
	b.WriteString(indentReport(q.String()))
	b.WriteString("\nexplanation:\n")
	b.WriteString(indentReport(x.String()))
	fmt.Fprintf(&b, "\ntraining: precision %.3f, generality %.3f, relevance %.3f\n",
		x.TrainPrecision(), x.TrainGenerality(), x.TrainRelevance())
	if lo, hi, ok := x.TrainRelevanceBounds(); ok {
		fmt.Fprintf(&b, "          relevance 95%% CI [%.3f, %.3f]\n", lo, hi)
	}
	return b.String()
}

func indentReport(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

// Explain generates a because clause for the query (the user's despite
// clause is used as-is).
func (e *Explainer) Explain(q *Query) (*Explanation, error) {
	x, err := e.ex.Explain(q.q)
	if err != nil {
		return nil, err
	}
	return &Explanation{x: x, q: q.q}, nil
}

// ExplainContext is Explain with cancellation: the pipeline checks ctx
// between stages and at every growth round, returning ctx.Err() once it
// is done. The context carries cancellation only — a completed
// explanation is byte-identical to an uncancelled run with the same
// options, whatever deadline the context had.
func (e *Explainer) ExplainContext(ctx context.Context, q *Query) (*Explanation, error) {
	x, err := e.ex.ExplainCtx(ctx, q.q)
	if err != nil {
		return nil, err
	}
	return &Explanation{x: x, q: q.q}, nil
}

// ExplainQuery parses PXQL source and explains it in one step.
func (e *Explainer) ExplainQuery(src string) (*Explanation, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.Explain(q)
}

// ExplainQueryContext parses PXQL source and explains it in one step,
// with ExplainContext's cancellation semantics.
func (e *Explainer) ExplainQueryContext(ctx context.Context, src string) (*Explanation, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.ExplainContext(ctx, q)
}

// ExplainWithDespite first generates a despite extension (for
// under-specified queries), then the because clause in its context.
func (e *Explainer) ExplainWithDespite(q *Query) (*Explanation, error) {
	x, err := e.ex.ExplainWithDespite(q.q)
	if err != nil {
		return nil, err
	}
	return &Explanation{x: x, q: q.q}, nil
}

// ExplainWithDespiteContext is ExplainWithDespite with ExplainContext's
// cancellation semantics, covering the despite-generation stage too.
func (e *Explainer) ExplainWithDespiteContext(ctx context.Context, q *Query) (*Explanation, error) {
	x, err := e.ex.ExplainWithDespiteCtx(ctx, q.q)
	if err != nil {
		return nil, err
	}
	return &Explanation{x: x, q: q.q}, nil
}

// GenerateDespite produces only the despite extension for a query.
func (e *Explainer) GenerateDespite(q *Query) (string, error) {
	des, err := e.ex.GenerateDespite(q.q)
	if err != nil {
		return "", err
	}
	return des.String(), nil
}

// DespiteToThreshold generates the shortest despite extension whose
// training relevance reaches the threshold (paper Section 4.2's
// relevance-threshold modification). met reports whether the threshold
// was reached; the returned clause is PerfXplain's best effort either
// way.
func (e *Explainer) DespiteToThreshold(q *Query, threshold float64) (despite string, relevance float64, met bool, err error) {
	des, rel, ok, err := e.ex.DespiteToThreshold(q.q, threshold)
	if err != nil {
		return "", 0, false, err
	}
	return des.String(), rel, ok, nil
}

// NewTargetQuery builds an unbound query about an arbitrary numeric
// metric: "I observed <target> to be <obsCode> (LT/SIM/GT) but expected
// <expCode>". Combine with Bind or FindPairOfInterest, and set
// Options.Target to the same metric when building the Explainer.
func NewTargetQuery(target, obsCode, expCode string) (*Query, error) {
	q, err := core.TargetQuery(target, obsCode, expCode)
	if err != nil {
		return nil, err
	}
	return &Query{q}, nil
}

// ShardTokenEnv is the environment variable the pxql binaries read the
// shared shard-worker token from when no flag supplies it.
const ShardTokenEnv = "PXQL_SHARD_TOKEN"

// ShardWorker serves shard tasks from r until EOF, writing results to w
// — the loop behind the pxql binaries' -shard-worker mode. Programs
// embedding this package can expose the same mode (reading stdin,
// writing stdout) and name themselves in Options.ShardWorkerCommand to
// run explanation shards on their own subprocesses.
func ShardWorker(r io.Reader, w io.Writer) error {
	return shard.Worker(r, w)
}

// ListenAndServeShardWorkers turns this process into a remote shard
// worker: it listens on a TCP address and serves the shard protocol on
// every connection a coordinator opens — the loop behind `pxql
// -shard-worker -listen`. Connections are authenticated with an
// HMAC challenge over the shared token (which must be non-empty and
// match the coordinator's Options.ShardToken); each connection gets its
// own worker loop and content-addressed slice cache. The call blocks
// until the listener fails.
func ListenAndServeShardWorkers(addr, token string) error {
	//pxql:realtime — the HMAC handshake timestamps challenges; server mode is off the deterministic path
	return shard.ListenAndServe(addr, token)
}

// ServeShardWorkers serves the shard protocol on an existing listener;
// see ListenAndServeShardWorkers.
func ServeShardWorkers(l net.Listener, token string) error {
	//pxql:realtime — see ListenAndServeShardWorkers
	return shard.Serve(l, token)
}

// Metrics are the paper's explanation-quality measures evaluated on a
// log (Definitions 4-6).
type Metrics struct {
	Relevance  float64
	Precision  float64
	Generality float64
}

// Evaluate measures an explanation for a query against a log, typically
// a held-out one. With Options.Shards set the quadratic evaluation walk
// runs as shard specs: on Options.SharedPool when given, on a pool
// dialed (and torn down) for this call when ShardAddrs or ShardWorkers
// are set, and in-process otherwise. Repeated evaluations should prefer
// a SharedPool or Explainer.Evaluate, which keep workers — and their
// slice caches — alive between calls. The metrics are identical in
// every mode.
func Evaluate(log *Log, q *Query, x *Explanation, opt Options) (Metrics, error) {
	return EvaluateContext(context.Background(), log, q, x, opt)
}

// EvaluateContext is Evaluate with cancellation: the quadratic walk
// checks ctx between shards (and per evaluation chunk in-process),
// returning ctx.Err() once it is done. Completed metrics are identical
// to an uncancelled run.
func EvaluateContext(ctx context.Context, log *Log, q *Query, x *Explanation, opt Options) (Metrics, error) {
	maxPairs := opt.MaxPairs
	if maxPairs == 0 {
		maxPairs = core.DefaultConfig().MaxPairs
	}
	var m core.Metrics
	var err error
	switch {
	case opt.Shards > 0 && opt.SharedPool != nil:
		m, err = core.EvaluateExplanationShardedOverCtx(ctx, log.layout(), log.l, features.Level3, q.q, x.x, maxPairs, opt.Seed, opt.Shards, opt.SharedPool.p)
	case opt.Shards > 0 && (len(opt.ShardAddrs) > 0 || opt.ShardWorkers > 0):
		// Shard worker config must never be silently ignored — but a
		// one-shot Evaluate dialing and tearing down a fleet per call
		// would hide the cost callers configured workers to avoid.
		pool, perr := NewWorkerPool(PoolOptions{
			Workers: opt.ShardWorkers,
			Command: opt.ShardWorkerCommand,
			Addrs:   opt.ShardAddrs,
			Token:   opt.ShardToken,
		})
		if perr != nil {
			return Metrics{}, perr
		}
		defer pool.Close()
		m, err = core.EvaluateExplanationShardedOverCtx(ctx, log.layout(), log.l, features.Level3, q.q, x.x, maxPairs, opt.Seed, opt.Shards, pool.p)
	case opt.Shards > 0:
		m, err = core.EvaluateExplanationShardedOverCtx(ctx, log.layout(), log.l, features.Level3, q.q, x.x, maxPairs, opt.Seed, opt.Shards,
			shard.InProc{Workers: opt.Parallelism})
	default:
		m, err = core.EvaluateExplanationPCtx(ctx, log.l, features.Level3, q.q, x.x, maxPairs, opt.Seed, opt.Parallelism)
	}
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{Relevance: m.Relevance, Precision: m.Precision, Generality: m.Generality}, nil
}

// Evaluate measures an explanation against a log through this
// explainer's shard configuration: with a worker pool (owned or shared)
// the quadratic walk fans out to the workers, whose cached log slices
// make repeated evaluations — several widths of one explanation, say —
// cheap to ship. Metrics are identical to the package-level Evaluate.
func (e *Explainer) Evaluate(log *Log, q *Query, x *Explanation) (Metrics, error) {
	return e.EvaluateContext(context.Background(), log, q, x)
}

// EvaluateContext is Evaluate with EvaluateContext's (package-level)
// cancellation semantics, through this explainer's shard configuration.
func (e *Explainer) EvaluateContext(ctx context.Context, log *Log, q *Query, x *Explanation) (Metrics, error) {
	maxPairs := e.cfg.MaxPairs
	if maxPairs == 0 {
		maxPairs = core.DefaultConfig().MaxPairs
	}
	var m core.Metrics
	var err error
	if e.cfg.Runner != nil {
		m, err = core.EvaluateExplanationShardedOverCtx(ctx, log.layout(), log.l, features.Level3, q.q, x.x,
			maxPairs, e.cfg.Seed, e.cfg.Shards, e.cfg.Runner)
	} else {
		m, err = core.EvaluateExplanationPCtx(ctx, log.l, features.Level3, q.q, x.x,
			maxPairs, e.cfg.Seed, e.cfg.Parallelism)
	}
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{Relevance: m.Relevance, Precision: m.Precision, Generality: m.Generality}, nil
}

// RuleOfThumbExplain runs the RuleOfThumb baseline (paper Section 5.1):
// the top-width globally important features the pair disagrees on.
func RuleOfThumbExplain(log *Log, q *Query, width int, seed int64) (*Explanation, error) {
	if width <= 0 {
		width = 3
	}
	rot, err := baselines.NewRuleOfThumb(log.l, "duration", seed)
	if err != nil {
		return nil, err
	}
	x, err := rot.Explain(q.q, width)
	if err != nil {
		return nil, err
	}
	return &Explanation{x: x, q: q.q}, nil
}

// SimButDiffExplain runs the SimButDiff baseline (paper Section 5.2):
// what-if analysis over isSame features of pairs similar to the pair of
// interest, on all available cores.
func SimButDiffExplain(log *Log, q *Query, width int, seed int64) (*Explanation, error) {
	return SimButDiffExplainP(log, q, width, seed, 0)
}

// SimButDiffExplainP is SimButDiffExplain with an explicit worker bound
// for pair enumeration (<= 0 means GOMAXPROCS); the explanation is
// identical at every setting. RuleOfThumb has no such variant: its
// RReliefF neighbour searches already run on all cores (bit-identically
// — see relief.Config.Parallelism), and the weight accumulation itself
// is sequential.
func SimButDiffExplainP(log *Log, q *Query, width int, seed int64, parallelism int) (*Explanation, error) {
	if width <= 0 {
		width = 3
	}
	sbd, err := baselines.NewSimButDiff(log.l, baselines.SimButDiffConfig{Seed: seed, Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	x, err := sbd.Explain(q.q, width)
	if err != nil {
		return nil, err
	}
	return &Explanation{x: x, q: q.q}, nil
}

// FindPairOfInterest returns a pair of record IDs in the log that
// satisfies the query's despite and observed clauses — a convenience for
// demos and tests that need a concrete pair to ask about. Among the
// matching pairs it returns the most salient one: the largest gap on the
// raw feature the observed clause compares (a user asks about the case
// that caught their eye, not a borderline one). ok is false when no such
// pair exists. The search runs on all available cores; use
// FindPairOfInterestP to bound it.
func FindPairOfInterest(log *Log, q *Query, seed int64) (id1, id2 string, ok bool) {
	return FindPairOfInterestP(log, q, seed, 0)
}

// FindPairOfInterestP is FindPairOfInterest with an explicit worker
// bound (<= 0 means GOMAXPROCS); the selected pair is identical at
// every setting.
func FindPairOfInterestP(log *Log, q *Query, seed int64, parallelism int) (id1, id2 string, ok bool) {
	pairs := core.RelatedPairsP(log.l, features.Level3, q.q, 50000, seed, parallelism)
	raw := ""
	if len(q.q.Observed) > 0 {
		raw, _ = features.ParseName(q.q.Observed[0].Feature)
	}
	bestGap := -1.0
	for _, p := range pairs {
		if !p.Observed {
			continue
		}
		gap := 0.0
		if raw != "" {
			v1 := log.l.Value(p.A, raw)
			v2 := log.l.Value(p.B, raw)
			if v1.Kind == joblog.Numeric && v2.Kind == joblog.Numeric && v1.Num > 0 && v2.Num > 0 {
				gap = v1.Num / v2.Num
				if gap < 1 {
					gap = 1 / gap
				}
			}
		}
		if gap > bestGap {
			bestGap = gap
			id1, id2, ok = p.A.ID, p.B.ID, true
		}
	}
	return id1, id2, ok
}
