package perfxplain

import (
	"runtime"
	"sync"
	"testing"
)

// The public determinism contract of Options.Parallelism: with the same
// seed, the end-to-end pipeline — collection, explanation with a
// generated despite clause, and held-out evaluation — produces
// byte-identical output at Parallelism 1, 4 and GOMAXPROCS.

var (
	detOnce sync.Once
	detJobs *Log
	detErr  error
)

func detLog(t *testing.T) *Log {
	t.Helper()
	detOnce.Do(func() {
		detJobs, _, detErr = Collect(SweepOptions{Small: true, Seed: 42})
	})
	if detErr != nil {
		t.Fatal(detErr)
	}
	return detJobs
}

const detQuery = `
DESPITE numinstances_issame = T AND pigscript_issame = T
OBSERVED duration_compare = GT
EXPECTED duration_compare = SIM`

func explainAt(t *testing.T, jobs *Log, parallelism int) (explanation string, metrics Metrics) {
	t.Helper()
	opt := Options{Width: 3, DespiteWidth: 2, Seed: 7, Parallelism: parallelism}
	q, err := ParseQuery(detQuery)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, ok := FindPairOfInterest(jobs, q, 7)
	if !ok {
		t.Fatal("no pair of interest in the small sweep")
	}
	q.Bind(id1, id2)
	ex, err := NewExplainer(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ex.ExplainWithDespite(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(jobs, q, x, opt)
	if err != nil {
		t.Fatal(err)
	}
	return x.String(), m
}

func TestExplanationIdenticalAcrossParallelism(t *testing.T) {
	jobs := detLog(t)
	baseX, baseM := explainAt(t, jobs, 1)
	if baseX == "" {
		t.Fatal("empty explanation")
	}
	for _, p := range []int{4, runtime.GOMAXPROCS(0)} {
		gotX, gotM := explainAt(t, jobs, p)
		if gotX != baseX {
			t.Errorf("Parallelism=%d explanation differs:\n%s\nvs Parallelism=1:\n%s", p, gotX, baseX)
		}
		if gotM != baseM {
			t.Errorf("Parallelism=%d metrics %+v differ from serial %+v", p, gotM, baseM)
		}
	}
}
