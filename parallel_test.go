package perfxplain

import (
	"net"
	"runtime"
	"sync"
	"testing"
)

// The public determinism contract of Options.Parallelism: with the same
// seed, the end-to-end pipeline — collection, explanation with a
// generated despite clause, and held-out evaluation — produces
// byte-identical output at Parallelism 1, 4 and GOMAXPROCS.

var (
	detOnce sync.Once
	detJobs *Log
	detErr  error
)

func detLog(t *testing.T) *Log {
	t.Helper()
	detOnce.Do(func() {
		detJobs, _, detErr = Collect(SweepOptions{Small: true, Seed: 42})
	})
	if detErr != nil {
		t.Fatal(detErr)
	}
	return detJobs
}

const detQuery = `
DESPITE numinstances_issame = T AND pigscript_issame = T
OBSERVED duration_compare = GT
EXPECTED duration_compare = SIM`

func explainAt(t *testing.T, jobs *Log, parallelism int) (explanation string, metrics Metrics) {
	t.Helper()
	opt := Options{Width: 3, DespiteWidth: 2, Seed: 7, Parallelism: parallelism}
	q, err := ParseQuery(detQuery)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, ok := FindPairOfInterest(jobs, q, 7)
	if !ok {
		t.Fatal("no pair of interest in the small sweep")
	}
	q.Bind(id1, id2)
	ex, err := NewExplainer(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ex.ExplainWithDespite(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(jobs, q, x, opt)
	if err != nil {
		t.Fatal(err)
	}
	return x.String(), m
}

func TestExplanationIdenticalAcrossParallelism(t *testing.T) {
	jobs := detLog(t)
	baseX, baseM := explainAt(t, jobs, 1)
	if baseX == "" {
		t.Fatal("empty explanation")
	}
	for _, p := range []int{4, runtime.GOMAXPROCS(0)} {
		gotX, gotM := explainAt(t, jobs, p)
		if gotX != baseX {
			t.Errorf("Parallelism=%d explanation differs:\n%s\nvs Parallelism=1:\n%s", p, gotX, baseX)
		}
		if gotM != baseM {
			t.Errorf("Parallelism=%d metrics %+v differ from serial %+v", p, gotM, baseM)
		}
	}
}

// TestRemoteWorkersPublicAPI pins the public remote path end to end:
// ServeShardWorkers on a loopback listener, coordinators reaching it
// via Options.ShardAddrs and via a shared WorkerPool, explanations and
// held-out metrics byte-identical to the direct path, and the shared
// pool surviving — caches warm — across several explainers.
func TestRemoteWorkersPublicAPI(t *testing.T) {
	jobs := detLog(t)
	baseX, baseM := explainAt(t, jobs, 1)

	const token = "public-api-token"
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeShardWorkers(ln, token)
	t.Cleanup(func() { ln.Close() })
	addr := ln.Addr().String()

	q, err := ParseQuery(detQuery)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, ok := FindPairOfInterest(jobs, q, 7)
	if !ok {
		t.Fatal("no pair of interest")
	}
	q.Bind(id1, id2)

	// Per-explainer remote pool via Options.ShardAddrs.
	opt := Options{Width: 3, DespiteWidth: 2, Seed: 7, Shards: 4,
		ShardAddrs: []string{addr}, ShardToken: token}
	ex, err := NewExplainer(jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ex.ExplainWithDespite(q)
	if err != nil {
		t.Fatal(err)
	}
	if x.String() != baseX {
		t.Errorf("remote explanation differs:\n%s\nvs direct:\n%s", x.String(), baseX)
	}
	m, err := ex.Evaluate(jobs, q, x)
	if err != nil {
		t.Fatal(err)
	}
	if m != baseM {
		t.Errorf("remote metrics %+v differ from direct %+v", m, baseM)
	}
	if s, ok := ex.ShardStats(); !ok || s.FramesSent == 0 {
		t.Errorf("remote explainer reported no shard traffic: %+v ok=%v", s, ok)
	}
	ex.Close()
	ex.Close() // Close is idempotent

	// One shared pool across several explainers (the harness topology).
	pool, err := NewWorkerPool(PoolOptions{Addrs: []string{addr}, Token: token, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	for round := 0; round < 2; round++ {
		sx, err := NewExplainer(jobs, Options{Width: 3, DespiteWidth: 2, Seed: 7, Shards: 4, SharedPool: pool})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sx.ExplainWithDespite(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != baseX {
			t.Errorf("shared-pool round %d explanation differs:\n%s\nvs direct:\n%s", round, got.String(), baseX)
		}
		gm, err := sx.Evaluate(jobs, q, got)
		if err != nil {
			t.Fatal(err)
		}
		if gm != baseM {
			t.Errorf("shared-pool round %d metrics %+v differ from direct %+v", round, gm, baseM)
		}
		sx.Close() // must not tear down the shared pool
	}
	if s := pool.Stats(); s.SliceHits == 0 {
		t.Errorf("shared pool recorded no slice-cache hits across rounds: %+v", s)
	}
}
