package perfxplain

// BenchmarkColumnarVsRow measures the columnar engine against the boxed
// row path it replaced, on the three hot stages of the explanation
// pipeline over the small-sweep log:
//
//   - predicates: despite/observed/expected evaluation over every related
//     pair (compiled predicates vs interpreted EvalPair);
//   - materialize: derived pair-feature materialization (flat pair matrix
//     vs [][]joblog.Value);
//   - dtree: per-feature split scoring (columnar BestSplits vs a boxed
//     gather over BestThreshold/BestNominalValue).
//
// Run with:
//
//	go test -bench BenchmarkColumnarVsRow -benchmem
//
// The same measurements feed the BENCH_columnar.json perf artifact:
//
//	BENCH_COLUMNAR_JSON=BENCH_columnar.json go test -run TestBenchColumnarJSON .
//
// which CI runs and uploads on every push so the perf trajectory is
// tracked from this PR on.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"perfxplain/internal/core"
	"perfxplain/internal/dtree"
	"perfxplain/internal/features"
	"perfxplain/internal/joblog"
	"perfxplain/internal/pxql"
)

// colBench is the shared fixture: the small-sweep job log, the WhySlower
// query bound to a real pair, and its related pairs.
type colBenchFixture struct {
	log   *joblog.Log
	d     *features.Deriver
	q     *pxql.Query
	pairs []core.LabeledPair
}

var (
	colBenchOnce sync.Once
	colBench     *colBenchFixture
	colBenchErr  error
)

func colBenchFix() (*colBenchFixture, error) {
	colBenchOnce.Do(func() {
		jobs, _, err := Collect(SweepOptions{Small: true, Seed: 42})
		if err != nil {
			colBenchErr = err
			return
		}
		q, err := ParseQuery(whySlowerSrc)
		if err != nil {
			colBenchErr = err
			return
		}
		id1, id2, ok := FindPairOfInterest(jobs, q, 1)
		if !ok {
			colBenchErr = fmt.Errorf("no pair of interest in small log")
			return
		}
		q.Bind(id1, id2)
		log := jobs.l
		colBench = &colBenchFixture{
			log:   log,
			d:     features.NewDeriver(log.Schema, features.Level3),
			q:     q.q,
			pairs: core.RelatedPairs(log, features.Level3, q.q, 0, 1),
		}
	})
	return colBench, colBenchErr
}

// benchPredicatesRow evaluates the query's three clauses on every related
// pair through the interpreted row engine.
func benchPredicatesRow(b *testing.B) {
	fx, err := colBenchFix()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for n := 0; n < b.N; n++ {
		for _, p := range fx.pairs {
			if fx.q.Despite.EvalPair(fx.d, p.A, p.B) {
				sink++
			}
			if fx.q.Observed.EvalPair(fx.d, p.A, p.B) {
				sink++
			}
			if fx.q.Expected.EvalPair(fx.d, p.A, p.B) {
				sink++
			}
		}
	}
	benchSink = sink
}

// benchPredicatesColumnar is the same workload on compiled predicates.
func benchPredicatesColumnar(b *testing.B) {
	fx, err := colBenchFix()
	if err != nil {
		b.Fatal(err)
	}
	cols := fx.log.Columns()
	cDes := fx.q.Despite.Compile(fx.d, cols)
	cObs := fx.q.Observed.Compile(fx.d, cols)
	cExp := fx.q.Expected.Compile(fx.d, cols)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for n := 0; n < b.N; n++ {
		for _, p := range fx.pairs {
			if cDes.EvalPair(p.IA, p.IB) {
				sink++
			}
			if cObs.EvalPair(p.IA, p.IB) {
				sink++
			}
			if cExp.EvalPair(p.IA, p.IB) {
				sink++
			}
		}
	}
	benchSink = sink
}

// benchMaterializeRow materializes every related pair's derived vector
// through the boxed row engine.
func benchMaterializeRow(b *testing.B) {
	fx, err := colBenchFix()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, p := range fx.pairs {
			vec := fx.d.Vector(p.A, p.B)
			benchSink = len(vec)
		}
	}
}

// benchMaterializeColumnar fills a preallocated pair matrix — the
// steady-state path, which must not allocate per pair.
func benchMaterializeColumnar(b *testing.B) {
	fx, err := colBenchFix()
	if err != nil {
		b.Fatal(err)
	}
	cols := fx.log.Columns()
	m := fx.d.NewPairMatrix(len(fx.pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, p := range fx.pairs {
			m.Fill(cols, i, p.IA, p.IB)
		}
	}
	benchSink = m.N
}

// benchLabels labels each record by whether its duration exceeds the
// log's midpoint — a balanced, deterministic split-scoring workload.
func benchLabels(log *joblog.Log) []bool {
	min, max, _ := log.NumericRange("duration")
	mid := (min + max) / 2
	di := log.Schema.MustIndex("duration")
	labels := make([]bool, log.Len())
	for i, r := range log.Records {
		labels[i] = r.Values[di].Kind == joblog.Numeric && r.Values[di].Num > mid
	}
	return labels
}

// benchDtreeRow is the pre-columnar BestSplits: gather each feature's
// boxed values, then score with the boxed primitives.
func benchDtreeRow(b *testing.B) {
	fx, err := colBenchFix()
	if err != nil {
		b.Fatal(err)
	}
	labels := benchLabels(fx.log)
	idx := make([]int, fx.log.Len())
	for i := range idx {
		idx[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		found := 0
		subLabels := make([]bool, len(idx))
		for j, i := range idx {
			subLabels[j] = labels[i]
		}
		for f := 0; f < fx.log.Schema.Len(); f++ {
			subValues := make([]joblog.Value, len(idx))
			for j, i := range idx {
				subValues[j] = fx.log.Records[i].Values[f]
			}
			if fx.log.Schema.Field(f).Kind == joblog.Numeric {
				if _, _, ok := dtree.BestThreshold(subValues, subLabels); ok {
					found++
				}
			} else {
				if _, _, ok := dtree.BestNominalValue(subValues, subLabels); ok {
					found++
				}
			}
		}
		benchSink = found
	}
}

// benchDtreeColumnar is today's BestSplits over the columnar view.
func benchDtreeColumnar(b *testing.B) {
	fx, err := colBenchFix()
	if err != nil {
		b.Fatal(err)
	}
	labels := benchLabels(fx.log)
	idx := make([]int, fx.log.Len())
	for i := range idx {
		idx[i] = i
	}
	fx.log.Columns() // build outside the timed loop, like every real caller
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		splits := dtree.BestSplits(fx.log, labels, idx, 1, false)
		benchSink = len(splits)
	}
}

var benchSink int

var columnarVsRow = []struct {
	name string
	fn   func(*testing.B)
}{
	{"predicates/row", benchPredicatesRow},
	{"predicates/columnar", benchPredicatesColumnar},
	{"materialize/row", benchMaterializeRow},
	{"materialize/columnar", benchMaterializeColumnar},
	{"dtree/row", benchDtreeRow},
	{"dtree/columnar", benchDtreeColumnar},
}

func BenchmarkColumnarVsRow(b *testing.B) {
	for _, bench := range columnarVsRow {
		b.Run(bench.name, bench.fn)
	}
}

// TestBenchColumnarJSON runs the columnar-vs-row benchmarks
// programmatically and writes the BENCH_columnar.json summary consumed
// by CI. Skipped unless BENCH_COLUMNAR_JSON names the output path.
func TestBenchColumnarJSON(t *testing.T) {
	path := os.Getenv("BENCH_COLUMNAR_JSON")
	if path == "" {
		t.Skip("set BENCH_COLUMNAR_JSON=<path> to emit the benchmark summary")
	}
	type entry struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	results := make(map[string]entry, len(columnarVsRow))
	for _, bench := range columnarVsRow {
		r := testing.Benchmark(bench.fn)
		results[bench.name] = entry{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	speedup := func(stage string) float64 {
		row, col := results[stage+"/row"], results[stage+"/columnar"]
		if col.NsPerOp == 0 {
			return 0
		}
		return row.NsPerOp / col.NsPerOp
	}
	out := map[string]any{
		"benchmarks": results,
		"speedup": map[string]float64{
			"predicates":  speedup("predicates"),
			"materialize": speedup("materialize"),
			"dtree":       speedup("dtree"),
		},
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, blob)

	// The steady-state materialization path must be allocation-free and
	// the columnar engine must clear the 2x bar on the two pair-bound
	// stages; regressions fail the CI step rather than silently shipping.
	if a := results["materialize/columnar"].AllocsPerOp; a != 0 {
		t.Errorf("materialize/columnar allocates %d times per op, want 0", a)
	}
	for _, stage := range []string{"predicates", "materialize"} {
		if s := speedup(stage); s < 2 {
			t.Errorf("%s speedup = %.2fx, want >= 2x", stage, s)
		}
	}
}
